package engine

import (
	"strings"
	"testing"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/query"
	"supg/internal/randx"
)

func testEngine(t *testing.T) (*Engine, *dataset.Dataset) {
	t.Helper()
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)
	e := New(42)
	e.RegisterDatasetDefaults("video", d)
	return e, d
}

const engineRT = `
	SELECT * FROM video
	WHERE video_oracle(frame) = true
	ORACLE LIMIT 1000
	USING video_proxy(frame)
	RECALL TARGET 90%
	WITH PROBABILITY 95%`

func TestExecuteRecallQuery(t *testing.T) {
	e, d := testEngine(t)
	res, err := e.Execute(engineRT)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleCalls > 1000 {
		t.Fatalf("oracle calls %d exceed limit", res.OracleCalls)
	}
	if res.ProxyCalls != d.Len() {
		t.Fatalf("proxy calls %d, want full scan %d", res.ProxyCalls, d.Len())
	}
	if len(res.Indices) == 0 {
		t.Fatal("empty result")
	}
	eval := metrics.Evaluate(d, res.Indices)
	if eval.Recall < 0.5 {
		t.Fatalf("recall %v implausibly low for a 90%% target", eval.Recall)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestExecutePrecisionQuery(t *testing.T) {
	e, d := testEngine(t)
	res, err := e.Execute(`
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 1000
		USING video_proxy(frame)
		PRECISION TARGET 90%
		WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	eval := metrics.Evaluate(d, res.Indices)
	if eval.Precision < 0.7 {
		t.Fatalf("precision %v too low for a 90%% target", eval.Precision)
	}
}

func TestExecuteJointQuery(t *testing.T) {
	e, d := testEngine(t)
	res, err := e.Execute(`
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		USING video_proxy(frame)
		RECALL TARGET 80%
		PRECISION TARGET 90%
		WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	eval := metrics.Evaluate(d, res.Indices)
	if eval.Precision != 1 {
		t.Fatalf("joint query precision %v, want 1", eval.Precision)
	}
}

func TestExecuteUnknownTable(t *testing.T) {
	e, _ := testEngine(t)
	_, err := e.Execute(strings.Replace(engineRT, "FROM video", "FROM nope", 1))
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecuteUnknownUDFs(t *testing.T) {
	e, _ := testEngine(t)
	_, err := e.Execute(strings.Replace(engineRT, "video_oracle", "mystery", 1))
	if err == nil || !strings.Contains(err.Error(), "unknown oracle") {
		t.Fatalf("err = %v", err)
	}
	_, err = e.Execute(strings.Replace(engineRT, "video_proxy", "mystery", 1))
	if err == nil || !strings.Contains(err.Error(), "unknown proxy") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecuteParseErrorPropagates(t *testing.T) {
	e, _ := testEngine(t)
	if _, err := e.Execute("SELECT nothing"); err == nil {
		t.Fatal("parse error should propagate")
	}
}

func TestProxyRangeValidation(t *testing.T) {
	d := dataset.Beta(randx.New(2), 1000, 1, 1)
	e := New(1)
	e.RegisterTable("t", d)
	e.RegisterOracle("o", func(i int) (bool, error) { return d.TrueLabel(i), nil })
	e.RegisterProxy("p", func(i int) float64 { return 1.5 }) // invalid
	_, err := e.Execute(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err == nil || !strings.Contains(err.Error(), "outside [0,1]") {
		t.Fatalf("err = %v", err)
	}
}

func TestCustomUDFRegistration(t *testing.T) {
	d := dataset.Beta(randx.New(3), 20000, 0.01, 2)
	e := New(5)
	e.RegisterTable("t", d)
	oracleCalls := 0
	e.RegisterOracle("my_oracle", func(i int) (bool, error) {
		oracleCalls++
		return d.TrueLabel(i), nil
	})
	e.RegisterProxy("my_proxy", func(i int) float64 { return d.Score(i) })
	res, err := e.Execute(`SELECT * FROM t WHERE my_oracle(x) ORACLE LIMIT 500 USING my_proxy(x) RECALL TARGET 80% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if oracleCalls == 0 || oracleCalls > 500 {
		t.Fatalf("custom oracle called %d times", oracleCalls)
	}
	if res.Plan == nil || res.Plan.Spec.Kind != core.RecallTarget {
		t.Error("plan not echoed")
	}
}

func TestExecutePlanDeterministicForSameQuery(t *testing.T) {
	e, _ := testEngine(t)
	a, err := e.Execute(engineRT)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Execute(engineRT)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tau != b.Tau || len(a.Indices) != len(b.Indices) {
		t.Fatal("identical query on same engine seed should reproduce")
	}
}

func TestExecutePlanDirect(t *testing.T) {
	e, _ := testEngine(t)
	q, err := query.Parse(engineRT)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultUCI()
	plan, err := query.BuildPlan(q, query.PlanOptions{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecutePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Config.Method != core.MethodUCI {
		t.Error("plan config not honored")
	}
}
