package engine

import (
	"testing"
)

// BenchmarkMultiProxyFusedWarmQuery prices the fused hot path the way
// bench-labelstore prices label reuse: one cold run builds the fused
// index (two proxy scans + logistic calibration through the budgeted
// oracle and label store), then every warm iteration reuses the cached
// fused index and warm labels — reported warm-oracle-calls/op and
// warm-calibration-calls/op are both 0. See `make bench-multiproxy`.
func BenchmarkMultiProxyFusedWarmQuery(b *testing.B) { //supg:benchhygiene-ok trailing StopTimer excludes the metric math from the timed region; no StartTimer follows by design
	e, _, udfCalls := fusedEngine(b, Options{})
	cold, err := e.Execute(fusedLogisticRT)
	if err != nil {
		b.Fatal(err)
	}
	coldUDF := udfCalls.Load()
	b.ReportAllocs()
	b.ResetTimer()
	warmCalib := 0
	for i := 0; i < b.N; i++ {
		res, err := e.Execute(fusedLogisticRT)
		if err != nil {
			b.Fatal(err)
		}
		warmCalib += res.CalibrationCalls
	}
	b.StopTimer()
	b.ReportMetric(float64(cold.CalibrationCalls), "cold-calibration-calls")
	b.ReportMetric(float64(cold.OracleCalls), "cold-oracle-calls")
	b.ReportMetric(float64(udfCalls.Load()-coldUDF)/float64(b.N), "warm-oracle-calls/op")
	b.ReportMetric(float64(warmCalib)/float64(b.N), "warm-calibration-calls/op")
}

// BenchmarkMultiProxyWarmRecalibration isolates the calibration-reuse
// claim: each iteration re-registers a member proxy (dropping the
// fused index but not the stored labels) and re-runs the query, so the
// engine re-fuses and recalibrates every time — yet the recalibration
// is served entirely by the cross-query label store, and the oracle UDF
// is never invoked again (warm-oracle-calls/op = 0 in charged mode).
func BenchmarkMultiProxyWarmRecalibration(b *testing.B) { //supg:benchhygiene-ok trailing StopTimer excludes the metric math from the timed region; no StartTimer follows by design
	e, d, udfCalls := fusedEngine(b, Options{})
	if _, err := e.Execute(fusedLogisticRT); err != nil {
		b.Fatal(err)
	}
	coldUDF := udfCalls.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RegisterProxy("video_proxy", func(j int) float64 { return d.Score(j) })
		res, err := e.Execute(fusedLogisticRT)
		if err != nil {
			b.Fatal(err)
		}
		if res.CalibrationCacheHits != res.CalibrationCalls {
			b.Fatalf("recalibration missed the label store: %d of %d", res.CalibrationCacheHits, res.CalibrationCalls)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(udfCalls.Load()-coldUDF)/float64(b.N), "warm-oracle-calls/op")
}

// BenchmarkMultiProxyFusedVsBestSingle compares a warm fused logistic
// query against the best single-proxy query at the same budget — the
// per-query latency cost of multi-proxy fusion once the index is built
// (it should be none: both paths run the same single-column hot path).
func BenchmarkMultiProxyFusedVsBestSingle(b *testing.B) {
	single := `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 800
		USING video_proxy(frame)
		RECALL TARGET 90%
		WITH PROBABILITY 95%`
	for _, bench := range []struct{ name, sql string }{
		{"fused-logistic", fusedLogisticRT},
		{"best-single", single},
	} {
		b.Run(bench.name, func(b *testing.B) {
			e, _, _ := fusedEngine(b, Options{})
			if _, err := e.Execute(bench.sql); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute(bench.sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
