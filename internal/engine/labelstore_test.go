package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"supg/internal/dataset"
	"supg/internal/randx"
)

// countedEngine returns an engine whose oracle UDF counts its real
// invocations, so tests can observe the label store short-circuiting
// the oracle.
func countedEngine(t testing.TB, opts Options) (*Engine, *dataset.Dataset, *atomic.Int64) {
	t.Helper()
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)
	e := NewWithOptions(42, opts)
	var udfCalls atomic.Int64
	e.RegisterTable("video", d)
	e.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
	e.RegisterOracle("video_oracle", func(i int) (bool, error) {
		udfCalls.Add(1)
		return d.TrueLabel(i), nil
	})
	return e, d, &udfCalls
}

func sameIndices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWarmChargedRunIsByteIdentical is the tentpole equivalence test:
// a repeated identical query served from the label store (default
// charged mode) returns byte-identical Indices, Tau, and OracleCalls
// to the cold run, and its inner-oracle call count drops to zero.
func TestWarmChargedRunIsByteIdentical(t *testing.T) {
	for _, sql := range []string{engineRT, `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 1000
		USING video_proxy(frame)
		PRECISION TARGET 90%
		WITH PROBABILITY 95%`, `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		USING video_proxy(frame)
		RECALL TARGET 80%
		PRECISION TARGET 90%
		WITH PROBABILITY 95%`} {
		e, _, udfCalls := countedEngine(t, Options{})
		cold, err := e.Execute(sql)
		if err != nil {
			t.Fatal(err)
		}
		coldUDF := udfCalls.Load()
		if coldUDF == 0 {
			t.Fatal("cold run made no oracle UDF calls")
		}
		if cold.LabelCacheHits != 0 {
			t.Errorf("cold run reported %d label cache hits", cold.LabelCacheHits)
		}

		warm, err := e.Execute(sql)
		if err != nil {
			t.Fatal(err)
		}
		if got := udfCalls.Load() - coldUDF; got != 0 {
			t.Errorf("warm run made %d oracle UDF calls, want 0", got)
		}
		if !sameIndices(cold.Indices, warm.Indices) {
			t.Errorf("warm Indices diverged: %d vs %d records", len(warm.Indices), len(cold.Indices))
		}
		if cold.Tau != warm.Tau {
			t.Errorf("warm Tau %v, cold Tau %v", warm.Tau, cold.Tau)
		}
		if cold.OracleCalls != warm.OracleCalls {
			t.Errorf("warm OracleCalls %d, cold %d (charged mode must re-charge)", warm.OracleCalls, cold.OracleCalls)
		}
		if warm.LabelCacheHits != warm.OracleCalls {
			t.Errorf("warm LabelCacheHits %d, want all %d charged calls served from store", warm.LabelCacheHits, warm.OracleCalls)
		}
	}
}

// TestWarmRunMatchesStorelessEngine pins charged mode against an
// engine with the store disabled: the store may change only who
// answers, never what is answered.
func TestWarmRunMatchesStorelessEngine(t *testing.T) {
	bare, _, _ := countedEngine(t, Options{LabelCacheBytes: -1})
	if bare.LabelStore() != nil {
		t.Fatal("negative LabelCacheBytes did not disable the store")
	}
	want, err := bare.Execute(engineRT)
	if err != nil {
		t.Fatal(err)
	}

	cached, _, _ := countedEngine(t, Options{})
	if _, err := cached.Execute(engineRT); err != nil { // cold, fills store
		t.Fatal(err)
	}
	got, err := cached.Execute(engineRT) // warm
	if err != nil {
		t.Fatal(err)
	}
	if !sameIndices(want.Indices, got.Indices) || want.Tau != got.Tau || want.OracleCalls != got.OracleCalls {
		t.Errorf("warm run diverged from storeless engine: indices %d/%d tau %v/%v calls %d/%d",
			len(got.Indices), len(want.Indices), got.Tau, want.Tau, got.OracleCalls, want.OracleCalls)
	}
}

const engineRTFree = `
	SELECT * FROM video
	WHERE video_oracle(frame) = true
	ORACLE LIMIT 1000 REUSE FREE
	USING video_proxy(frame)
	RECALL TARGET 90%
	WITH PROBABILITY 95%`

// TestFreeReuseStretchesSampleBudget runs the REUSE FREE grammar form
// twice: the second run draws every label from the store, consuming
// zero budget while returning the identical result.
func TestFreeReuseStretchesSampleBudget(t *testing.T) {
	e, _, udfCalls := countedEngine(t, Options{})
	first, err := e.Execute(engineRTFree)
	if err != nil {
		t.Fatal(err)
	}
	if first.OracleCalls == 0 {
		t.Fatal("first free run consumed no budget")
	}
	afterFirst := udfCalls.Load()

	second, err := e.Execute(engineRTFree)
	if err != nil {
		t.Fatal(err)
	}
	if got := udfCalls.Load() - afterFirst; got != 0 {
		t.Errorf("second free run made %d UDF calls, want 0", got)
	}
	if second.OracleCalls != 0 {
		t.Errorf("second free run charged %d oracle calls, want 0 (hits are free)", second.OracleCalls)
	}
	if second.LabelCacheHits == 0 {
		t.Error("second free run reported no label cache hits")
	}
	if !sameIndices(first.Indices, second.Indices) || first.Tau != second.Tau {
		t.Error("free reuse changed the result set")
	}
}

// TestFreeReuseViaExecOptions checks the programmatic form of REUSE
// FREE is equivalent to the grammar clause.
func TestFreeReuseViaExecOptions(t *testing.T) {
	e, _, _ := countedEngine(t, Options{})
	if _, err := e.Execute(engineRT); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteContext(context.Background(), engineRT, ExecOptions{FreeReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleCalls != 0 {
		t.Errorf("warm free-reuse run charged %d calls, want 0", res.OracleCalls)
	}
	if res.LabelCacheHits == 0 {
		t.Error("warm free-reuse run reported no cache hits")
	}
}

// TestReRegistrationInvalidatesLabels: once the oracle (or table) is
// re-registered, stored labels from the old registration must never be
// served.
func TestReRegistrationInvalidatesLabels(t *testing.T) {
	d := dataset.Beta(randx.New(1), 30000, 0.01, 2)
	e := New(42)
	e.RegisterTable("video", d)
	e.RegisterProxy("video_proxy", func(i int) float64 { return d.Score(i) })
	e.RegisterOracle("video_oracle", func(i int) (bool, error) { return true, nil })

	const pt = `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 500
		USING video_proxy(frame)
		PRECISION TARGET 90%
		WITH PROBABILITY 95%`
	res, err := e.Execute(pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) == 0 {
		t.Fatal("all-true oracle returned nothing")
	}

	// Replace the oracle with one that rejects everything. Any stored
	// all-true label served now would surface as a positive.
	e.RegisterOracle("video_oracle", func(i int) (bool, error) { return false, nil })
	res, err = e.Execute(pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 0 {
		t.Fatalf("query after oracle re-registration returned %d records — stale labels served", len(res.Indices))
	}
	if res.LabelCacheHits != 0 {
		t.Errorf("query after invalidation reported %d cache hits", res.LabelCacheHits)
	}

	// Same for table re-registration.
	if _, err := e.Execute(pt); err != nil { // refill store under all-false
		t.Fatal(err)
	}
	e.RegisterOracle("video_oracle", func(i int) (bool, error) { return true, nil })
	e.RegisterTable("video", d)
	res, err = e.Execute(pt)
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelCacheHits != 0 {
		t.Errorf("query after table re-registration reported %d cache hits", res.LabelCacheHits)
	}
}

// TestProgressMatchesOracleCallsWarm is the accounting audit: the
// cumulative progress total must equal the result's OracleCalls on
// cold runs, warm charged runs (where labels never reach the counting
// wrapper), and under parallel dispatch.
func TestProgressMatchesOracleCallsWarm(t *testing.T) {
	for _, par := range []int{1, 4} {
		e, _, _ := countedEngine(t, Options{})
		for _, phase := range []string{"cold", "warm"} {
			var mu sync.Mutex
			final := 0
			res, err := e.ExecuteContext(context.Background(), engineRT, ExecOptions{
				OracleParallelism: par,
				Progress: func(n int) {
					mu.Lock()
					if n > final {
						final = n
					}
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			got := final
			mu.Unlock()
			if got != res.OracleCalls {
				t.Errorf("parallelism %d, %s run: progress total %d != OracleCalls %d",
					par, phase, got, res.OracleCalls)
			}
		}
	}
}

// TestLabelStoreSharedAcrossQueriesRace is the -race stress test:
// concurrent queries (charged and free) share one label store while
// AppendTable and oracle/table re-registration keep invalidating and
// extending it. After the dust settles, a query against a freshly
// re-registered all-false oracle must see no stale positives.
func TestLabelStoreSharedAcrossQueriesRace(t *testing.T) {
	d := dataset.Beta(randx.New(3), 4000, 0.05, 2)
	extra := dataset.Beta(randx.New(4), 100, 0.05, 2)
	e := New(7)
	e.RegisterTable("video", d)
	e.RegisterProxy("video_proxy", func(i int) float64 {
		// Appended ids score mid-range; any in-range value works.
		return float64(i%97) / 97
	})
	e.RegisterOracle("video_oracle", func(i int) (bool, error) { return true, nil })

	const rt = `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 200
		USING video_proxy(frame)
		RECALL TARGET 90%
		WITH PROBABILITY 95%`
	const rtFree = `
		SELECT * FROM video
		WHERE video_oracle(frame) = true
		ORACLE LIMIT 200 REUSE FREE
		USING video_proxy(frame)
		RECALL TARGET 90%
		WITH PROBABILITY 95%`

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(sql string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected while re-registration races the
				// query (unknown UDF windows); only data races and stale
				// labels are failures here.
				_, _ = e.Execute(sql)
			}
		}(map[bool]string{true: rt, false: rtFree}[w%2 == 0])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_, _ = e.AppendTable("video", extra)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		const pt = `
			SELECT * FROM video
			WHERE video_oracle(frame) = true
			ORACLE LIMIT 200
			USING video_proxy(frame)
			PRECISION TARGET 90%
			WITH PROBABILITY 95%`
		for i := 0; i < 20; i++ {
			// Flip to an all-false oracle; immediately afterwards no
			// stored all-true label may survive.
			e.RegisterOracle("video_oracle", func(int) (bool, error) { return false, nil })
			if res, err := e.Execute(pt); err == nil && len(res.Indices) != 0 {
				t.Errorf("round %d: stale labels served after invalidation (%d positives)", i, len(res.Indices))
			}
			e.RegisterOracle("video_oracle", func(int) (bool, error) { return true, nil })
		}
		close(stop)
	}()
	wg.Wait()
}
