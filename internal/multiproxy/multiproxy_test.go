package multiproxy

import (
	"math"
	"testing"

	"supg/internal/core"
	"supg/internal/dataset"
	"supg/internal/metrics"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// twoProxyDataset builds a dataset with two complementary noisy proxies:
// each individually is a degraded view of the calibrated score, but
// their noise is independent so fusion recovers signal.
func twoProxyDataset(seed uint64, n int) (d *dataset.Dataset, columns [][]float64) {
	r := randx.New(seed)
	base := dataset.Beta(r, n, 0.05, 1)
	noisy := func(stream uint64, sigma float64) []float64 {
		rs := r.Stream(stream)
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			v := base.Score(i) + sigma*rs.NormFloat64()
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out[i] = v
		}
		return out
	}
	return base, [][]float64{noisy(1, 0.15), noisy(2, 0.15)}
}

func TestValidateColumns(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("no columns should error")
	}
	if _, err := Mean([][]float64{{}}); err == nil {
		t.Error("empty columns should error")
	}
	if _, err := Mean([][]float64{{0.1, 0.2}, {0.1}}); err == nil {
		t.Error("ragged columns should error")
	}
}

func TestMeanAndMax(t *testing.T) {
	cols := [][]float64{{0.2, 0.8}, {0.4, 0.2}}
	mean, err := Mean(cols)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean[0]-0.3) > 1e-12 || math.Abs(mean[1]-0.5) > 1e-12 {
		t.Errorf("mean %v", mean)
	}
	max, err := Max(cols)
	if err != nil {
		t.Fatal(err)
	}
	if max[0] != 0.4 || max[1] != 0.8 {
		t.Errorf("max %v", max)
	}
}

func TestFitLogisticSeparable(t *testing.T) {
	// One informative feature: label = feature > 0.5.
	var features [][]float64
	var labels []bool
	for i := 0; i < 200; i++ {
		v := float64(i) / 200
		features = append(features, []float64{v})
		labels = append(labels, v > 0.5)
	}
	m, err := FitLogistic(features, labels, 2000, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Score([]float64{0.9}) < 0.8 {
		t.Errorf("high feature scored %v", m.Score([]float64{0.9}))
	}
	if m.Score([]float64{0.1}) > 0.2 {
		t.Errorf("low feature scored %v", m.Score([]float64{0.1}))
	}
}

func TestFitLogisticIgnoresUselessFeature(t *testing.T) {
	r := randx.New(5)
	var features [][]float64
	var labels []bool
	for i := 0; i < 400; i++ {
		signal := r.Float64()
		junk := r.Float64()
		features = append(features, []float64{signal, junk})
		labels = append(labels, r.Bernoulli(signal))
	}
	m, err := FitLogistic(features, labels, 1500, 1.0, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]) <= math.Abs(m.Weights[1]) {
		t.Errorf("signal weight %v should dominate junk weight %v", m.Weights[0], m.Weights[1])
	}
}

func TestFitLogisticValidation(t *testing.T) {
	if _, err := FitLogistic(nil, nil, 10, 0.1, 0); err == nil {
		t.Error("no examples should error")
	}
	if _, err := FitLogistic([][]float64{{1}}, []bool{true, false}, 10, 0.1, 0); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitLogistic([][]float64{{1}, {1, 2}}, []bool{true, false}, 10, 0.1, 0); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Error("sigmoid(0)")
	}
}

func TestCalibrateRespectsBudget(t *testing.T) {
	d, cols := twoProxyDataset(1, 20000)
	budgeted := oracle.NewBudgeted(oracle.NewSimulated(d), 100)
	if _, err := Calibrate(randx.New(2), cols, budgeted, 100); err != nil {
		t.Fatal(err)
	}
	if budgeted.Used() > 100 {
		t.Fatalf("calibration used %d labels", budgeted.Used())
	}
	if _, err := Calibrate(randx.New(2), cols, budgeted, 5); err == nil {
		t.Error("tiny calibration budget should error")
	}
}

func TestApplyShapeChecks(t *testing.T) {
	m := &LogisticModel{Weights: []float64{1, 2}}
	if _, err := m.Apply([][]float64{{0.5}}); err == nil {
		t.Error("column-count mismatch should error")
	}
	out, err := m.Apply([][]float64{{0.5}, {0.25}})
	if err != nil || len(out) != 1 {
		t.Fatalf("apply: %v %v", out, err)
	}
	if out[0] <= 0 || out[0] >= 1 {
		t.Errorf("fused score %v outside (0,1)", out[0])
	}
}

func TestSelectMultiGuaranteeHolds(t *testing.T) {
	d, cols := twoProxyDataset(3, 40000)
	spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.85, Delta: 0.05, Budget: 2000}
	r := randx.New(4)
	fails := 0
	trials := 30
	for trial := 0; trial < trials; trial++ {
		res, err := Select(r.Stream(uint64(trial)), cols, oracle.NewSimulated(d), spec, core.DefaultSUPG(), FuseLogistic)
		if err != nil {
			t.Fatal(err)
		}
		if res.OracleCalls > spec.Budget {
			t.Fatalf("total oracle calls %d exceed budget", res.OracleCalls)
		}
		if metrics.Evaluate(d, res.Indices).Recall < spec.Gamma {
			fails++
		}
	}
	if rate := float64(fails) / float64(trials); rate > 0.17 {
		t.Fatalf("multi-proxy failure rate %v", rate)
	}
}

func TestLogisticFusionBeatsSingleNoisyProxy(t *testing.T) {
	// Very noisy individual proxies (sigma 0.3) whose errors are
	// independent: the fused score recovers signal neither column has.
	r0 := randx.New(5)
	base := dataset.Beta(r0, 60000, 0.1, 1)
	noisy := func(stream uint64) []float64 {
		rs := r0.Stream(stream)
		out := make([]float64, base.Len())
		for i := range out {
			v := base.Score(i) + 0.3*rs.NormFloat64()
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			out[i] = v
		}
		return out
	}
	d := base
	cols := [][]float64{noisy(1), noisy(2), noisy(3)}
	spec := core.Spec{Kind: core.PrecisionTarget, Gamma: 0.8, Delta: 0.05, Budget: 2000}
	r := randx.New(6)

	quality := func(scores [][]float64, fusion Fusion) float64 {
		sum := 0.0
		trials := 10
		for trial := 0; trial < trials; trial++ {
			res, err := Select(r.Stream(uint64(1000+trial+int(fusion)*100)), scores, oracle.NewSimulated(d), spec, core.DefaultSUPG(), fusion)
			if err != nil {
				t.Fatal(err)
			}
			sum += metrics.Evaluate(d, res.Indices).Recall
		}
		return sum / float64(trials)
	}

	single := quality(cols[:1], FuseMean) // single noisy proxy
	fusedLog := quality(cols, FuseLogistic)
	if fusedLog < single*0.9 {
		t.Fatalf("logistic fusion recall %v should not fall below single-proxy %v", fusedLog, single)
	}
}

func TestSelectMultiMeanAndMax(t *testing.T) {
	d, cols := twoProxyDataset(7, 20000)
	spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.8, Delta: 0.05, Budget: 1500}
	for _, f := range []Fusion{FuseMean, FuseMax} {
		res, err := Select(randx.New(8), cols, oracle.NewSimulated(d), spec, core.DefaultSUPG(), f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if res.CalibrationCalls != 0 {
			t.Errorf("%v: label-free fusion spent %d calibration calls", f, res.CalibrationCalls)
		}
		if res.Fusion != f {
			t.Errorf("fusion echo %v", res.Fusion)
		}
	}
}

func TestSelectMultiValidation(t *testing.T) {
	d, cols := twoProxyDataset(9, 5000)
	bad := core.Spec{Kind: core.RecallTarget, Gamma: 0, Delta: 0.05, Budget: 100}
	if _, err := Select(randx.New(1), cols, oracle.NewSimulated(d), bad, core.DefaultSUPG(), FuseMean); err == nil {
		t.Error("invalid spec should be rejected")
	}
	good := core.Spec{Kind: core.RecallTarget, Gamma: 0.8, Delta: 0.05, Budget: 100}
	if _, err := Select(randx.New(1), nil, oracle.NewSimulated(d), good, core.DefaultSUPG(), FuseMean); err == nil {
		t.Error("nil columns should be rejected")
	}
	if _, err := Select(randx.New(1), cols, oracle.NewSimulated(d), good, core.DefaultSUPG(), Fusion(9)); err == nil {
		t.Error("unknown fusion should be rejected")
	}
}

// complementaryProxyDataset builds the adversarial-for-single-proxy
// shape: two independent uniform signals a, b with labels drawn as
// Bernoulli(a*b). Each proxy alone sees only half the signal (given a
// high a, the label still hinges entirely on b), so any single-proxy
// ranking is mediocre; a fused ranking over both recovers it.
func complementaryProxyDataset(seed uint64, n int) (d *dataset.Dataset, columns [][]float64) {
	r := randx.New(seed)
	ra, rb, rl := r.Stream(1), r.Stream(2), r.Stream(3)
	a := make([]float64, n)
	b := make([]float64, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		a[i] = ra.Float64()
		b[i] = rb.Float64()
		labels[i] = rl.Bernoulli(a[i] * b[i])
	}
	d, err := dataset.New("complementary", a, labels)
	if err != nil {
		panic(err)
	}
	return d, [][]float64{a, b}
}

// TestLogisticFusionBeatsMediocreSingles mirrors the engine-level
// TestSUPGBeatsUniformOnPrecisionTarget for the multi-proxy extension:
// at the same total oracle budget, fused (logistic) selection must
// yield strictly better quality than either mediocre single proxy, and
// the recall guarantee must keep holding (failure rate <= delta +
// slack over deterministic trials) — fusion changes quality, never
// validity.
func TestLogisticFusionBeatsMediocreSingles(t *testing.T) {
	d, cols := complementaryProxyDataset(21, 50000)
	spec := core.Spec{Kind: core.RecallTarget, Gamma: 0.9, Delta: 0.05, Budget: 2000}
	cfg := core.DefaultSUPG()
	r := randx.New(22)
	trials := 30

	var fusedFails int
	quality := func(scores [][]float64, fusion Fusion, streamBase uint64, countFails bool) float64 {
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			res, err := Select(r.Stream(streamBase+uint64(trial)), scores, oracle.NewSimulated(d), spec, cfg, fusion)
			if err != nil {
				t.Fatal(err)
			}
			if res.OracleCalls > spec.Budget {
				t.Fatalf("oracle calls %d exceed budget %d", res.OracleCalls, spec.Budget)
			}
			e := metrics.Evaluate(d, res.Indices)
			if countFails && e.Recall < spec.Gamma {
				fusedFails++
			}
			sum += e.Precision
		}
		return sum / float64(trials)
	}

	singleA := quality(cols[:1], FuseMean, 1000, false) // one-member mean = the bare column
	singleB := quality(cols[1:], FuseMean, 2000, false)
	fused := quality(cols, FuseLogistic, 3000, true)

	best := singleA
	if singleB > best {
		best = singleB
	}
	t.Logf("fused=%.4f singleA=%.4f singleB=%.4f fails=%d", fused, singleA, singleB, fusedFails)
	if fused <= best {
		t.Fatalf("fused logistic precision %.4f should strictly beat best single proxy %.4f (a=%.4f b=%.4f)",
			fused, best, singleA, singleB)
	}
	if rate := float64(fusedFails) / float64(trials); rate > spec.Delta+0.10 {
		t.Fatalf("fused recall-guarantee failure rate %.3f above delta %.2f + slack", rate, spec.Delta)
	}
}

func TestFuserLabelFree(t *testing.T) {
	cols := [][]float64{{0.2, 0.8}, {0.4, 0.2}}
	for _, f := range []Fuser{{Kind: FuseMean}, {Kind: FuseMax}} {
		if f.NeedsOracle() {
			t.Errorf("%v claims to need an oracle", f.Kind)
		}
		out, err := f.Fuse(nil, cols, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Scores) != 2 || out.CalibrationCalls != 0 || out.Model != nil {
			t.Errorf("%v fused %+v", f.Kind, out)
		}
	}
	if _, err := (Fuser{Kind: Fusion(9)}).Fuse(nil, cols, nil); err == nil {
		t.Error("unknown fuser kind accepted")
	}
	if _, err := (Fuser{Kind: FuseLogistic, CalibrationBudget: 50}).Fuse(randx.New(1), cols, nil); err == nil {
		t.Error("logistic fuse without an oracle accepted")
	}
}

func TestFuserLogisticMetadata(t *testing.T) {
	d, cols := twoProxyDataset(13, 20000)
	budgeted := oracle.NewBudgeted(oracle.NewSimulated(d), 1000)
	f := Fuser{Kind: FuseLogistic, CalibrationBudget: 120}
	if !f.NeedsOracle() {
		t.Error("logistic fuser claims label-free")
	}
	out, err := f.Fuse(randx.New(14), cols, budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if out.CalibrationCalls != 120 || budgeted.Used() != 120 {
		t.Errorf("calibration used %d (oracle %d), want 120", out.CalibrationCalls, budgeted.Used())
	}
	if out.Model == nil || len(out.Model.Weights) != 2 {
		t.Errorf("model %+v", out.Model)
	}
	if len(out.Scores) != d.Len() {
		t.Errorf("fused column length %d", len(out.Scores))
	}
	for i, s := range out.Scores {
		if s <= 0 || s >= 1 {
			t.Fatalf("fused score %v at %d outside (0,1)", s, i)
		}
	}
}

func TestFusionStrings(t *testing.T) {
	if FuseMean.String() != "mean" || FuseMax.String() != "max" || FuseLogistic.String() != "logistic" {
		t.Error("fusion strings")
	}
}
