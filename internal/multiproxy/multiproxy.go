// Package multiproxy extends SUPG to queries with several proxy models,
// the future-work direction of the paper's Section 8 ("many scenarios
// naturally have multiple proxy models ... these algorithms can improve
// statistical rates relative to single proxy models").
//
// The extension fuses K proxy-score columns into a single column and
// then runs the standard single-proxy SUPG machinery on the fusion, so
// all accuracy guarantees carry over unchanged (they never depended on
// proxy quality — only result quality does). Three fusion strategies
// are provided:
//
//   - FuseMean / FuseMax: label-free combinations.
//   - FuseLogistic: a logistic-regression stacker calibrated on a small
//     oracle-labeled sample drawn through a budgeted oracle.
//
// The package is a fusion provider, not a query engine: Fuser turns
// proxy columns into one fused column plus calibration metadata, and
// the callers decide where that column lives. The SQL engine composes a
// Fuser into its per-table index builds (the fused column becomes a
// cached, segmented ScoreIndex shared by every query of the same score
// source, with calibration labels flowing through the cross-query label
// store), while the Select shim below runs the classic one-shot
// library path where calibration shares the query's own oracle budget.
package multiproxy

import (
	"fmt"
	"math"
	"sort"

	"supg/internal/core"
	"supg/internal/oracle"
	"supg/internal/randx"
	"supg/internal/sampling"
)

// Fusion names a proxy-combination strategy.
type Fusion int

const (
	// FuseMean averages the proxy scores.
	FuseMean Fusion = iota
	// FuseMax takes the per-record maximum score.
	FuseMax
	// FuseLogistic fits a logistic stacker on an oracle-labeled
	// calibration sample.
	FuseLogistic
)

// String implements fmt.Stringer.
func (f Fusion) String() string {
	switch f {
	case FuseMean:
		return "mean"
	case FuseMax:
		return "max"
	case FuseLogistic:
		return "logistic"
	}
	return fmt.Sprintf("Fusion(%d)", int(f))
}

// validateColumns checks the score matrix shape.
func validateColumns(columns [][]float64) (n int, err error) {
	if len(columns) == 0 {
		return 0, fmt.Errorf("multiproxy: no proxy columns")
	}
	n = len(columns[0])
	if n == 0 {
		return 0, fmt.Errorf("multiproxy: empty proxy columns")
	}
	for i, c := range columns {
		if len(c) != n {
			return 0, fmt.Errorf("multiproxy: column %d has %d records, column 0 has %d", i, len(c), n)
		}
	}
	return n, nil
}

// Mean fuses columns by averaging.
func Mean(columns [][]float64) ([]float64, error) {
	n, err := validateColumns(columns)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	inv := 1.0 / float64(len(columns))
	for _, c := range columns {
		for i, v := range c {
			out[i] += v * inv
		}
	}
	return out, nil
}

// Max fuses columns by the per-record maximum.
func Max(columns [][]float64) ([]float64, error) {
	n, err := validateColumns(columns)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	copy(out, columns[0])
	for _, c := range columns[1:] {
		for i, v := range c {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out, nil
}

// LogisticModel is a fitted stacker over K proxy scores.
type LogisticModel struct {
	// Weights has one weight per proxy column.
	Weights []float64
	// Bias is the intercept.
	Bias float64
}

// Score returns the fused probability for one record's proxy scores.
func (m *LogisticModel) Score(features []float64) float64 {
	z := m.Bias
	for i, w := range m.Weights {
		z += w * features[i]
	}
	return sigmoid(z)
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// FitLogistic trains a logistic stacker by full-batch gradient descent
// with L2 regularization. features is row-major: one row of K proxy
// scores per labeled record.
func FitLogistic(features [][]float64, labels []bool, epochs int, lr, l2 float64) (*LogisticModel, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("multiproxy: no calibration examples")
	}
	if len(features) != len(labels) {
		return nil, fmt.Errorf("multiproxy: %d feature rows but %d labels", len(features), len(labels))
	}
	k := len(features[0])
	for i, row := range features {
		if len(row) != k {
			return nil, fmt.Errorf("multiproxy: row %d has %d features, want %d", i, len(row), k)
		}
	}
	if epochs <= 0 {
		epochs = 500
	}
	if lr <= 0 {
		lr = 0.5
	}

	m := &LogisticModel{Weights: make([]float64, k)}
	n := float64(len(features))
	gradW := make([]float64, k)
	for e := 0; e < epochs; e++ {
		for j := range gradW {
			gradW[j] = 0
		}
		gradB := 0.0
		for i, row := range features {
			p := m.Score(row)
			y := 0.0
			if labels[i] {
				y = 1
			}
			diff := p - y
			for j, v := range row {
				gradW[j] += diff * v
			}
			gradB += diff
		}
		for j := range m.Weights {
			m.Weights[j] -= lr * (gradW[j]/n + l2*m.Weights[j])
		}
		m.Bias -= lr * gradB / n
	}
	return m, nil
}

// Calibrate draws calibBudget uniform records, labels them with the
// budgeted oracle, and fits a logistic stacker over the proxy columns.
func Calibrate(r *randx.Rand, columns [][]float64, o *oracle.Budgeted, calibBudget int) (*LogisticModel, error) {
	n, err := validateColumns(columns)
	if err != nil {
		return nil, err
	}
	if calibBudget < 10 {
		return nil, fmt.Errorf("multiproxy: calibration budget %d too small (need >= 10)", calibBudget)
	}
	idx := sampling.UniformWithoutReplacement(r, n, calibBudget)
	features := make([][]float64, 0, len(idx))
	labels := make([]bool, 0, len(idx))
	for _, i := range idx {
		row := make([]float64, len(columns))
		for j, c := range columns {
			row[j] = c[i]
		}
		lab, err := o.Label(i)
		if err != nil {
			return nil, fmt.Errorf("multiproxy: calibration labeling: %w", err)
		}
		features = append(features, row)
		labels = append(labels, lab)
	}
	return FitLogistic(features, labels, 0, 0, 1e-4)
}

// Apply scores every record with the fitted stacker.
func (m *LogisticModel) Apply(columns [][]float64) ([]float64, error) {
	n, err := validateColumns(columns)
	if err != nil {
		return nil, err
	}
	if len(m.Weights) != len(columns) {
		return nil, fmt.Errorf("multiproxy: model has %d weights for %d columns", len(m.Weights), len(columns))
	}
	out := make([]float64, n)
	row := make([]float64, len(columns))
	for i := 0; i < n; i++ {
		for j, c := range columns {
			row[j] = c[i]
		}
		out[i] = m.Score(row)
	}
	return out, nil
}

// Fuser is a fusion provider: a pure transformer from K proxy-score
// columns to the one fused column the selection machinery consumes.
// The zero CalibrationBudget is invalid for FuseLogistic; callers (the
// query planner, the Select shim) resolve a concrete budget first so
// equal Fusers always produce equal columns.
type Fuser struct {
	// Kind selects the fusion strategy.
	Kind Fusion
	// CalibrationBudget caps the oracle labels spent fitting a
	// calibrated (logistic) stacker. Ignored by label-free kinds.
	CalibrationBudget int
}

// Fused is a Fuser's output: the fused column plus the metadata callers
// surface in query statistics.
type Fused struct {
	// Scores is the fused column, one score per record.
	Scores []float64
	// CalibrationCalls counts the budget-consuming oracle calls spent on
	// calibration (0 for label-free fusions).
	CalibrationCalls int
	// CalibrationStoreHits counts calibration labels served from the
	// oracle's attached cross-query label store instead of the inner
	// UDF (subset of CalibrationCalls in charged mode).
	CalibrationStoreHits int
	// Model is the fitted stacker for calibrated fusions (nil otherwise).
	Model *LogisticModel
}

// NeedsOracle reports whether fusing requires calibration labels.
func (f Fuser) NeedsOracle() bool { return f.Kind == FuseLogistic }

// Fuse produces the fused column. Label-free kinds ignore r and o (nil
// is fine); FuseLogistic draws its calibration sample with r and labels
// it through o, consuming at most CalibrationBudget units of o's
// budget. The same (r, columns, labels) always yield the same column —
// fusion is deterministic, which is what lets engines cache its output.
func (f Fuser) Fuse(r *randx.Rand, columns [][]float64, o *oracle.Budgeted) (*Fused, error) {
	switch f.Kind {
	case FuseMean:
		scores, err := Mean(columns)
		if err != nil {
			return nil, err
		}
		return &Fused{Scores: scores}, nil
	case FuseMax:
		scores, err := Max(columns)
		if err != nil {
			return nil, err
		}
		return &Fused{Scores: scores}, nil
	case FuseLogistic:
		if o == nil {
			return nil, fmt.Errorf("multiproxy: logistic fusion needs a budgeted oracle")
		}
		before, beforeHits := o.Used(), o.StoreHits()
		model, err := Calibrate(r, columns, o, f.CalibrationBudget)
		if err != nil {
			return nil, err
		}
		scores, err := model.Apply(columns)
		if err != nil {
			return nil, err
		}
		return &Fused{
			Scores:               scores,
			CalibrationCalls:     o.Used() - before,
			CalibrationStoreHits: o.StoreHits() - beforeHits,
			Model:                model,
		}, nil
	}
	return nil, fmt.Errorf("multiproxy: unknown fusion %v", f.Kind)
}

// Result is a multi-proxy SUPG answer, extending core.Result with the
// fusion bookkeeping.
type Result struct {
	core.Result
	// Fusion is the strategy that produced the fused proxy.
	Fusion Fusion
	// CalibrationCalls counts oracle labels spent on fusion (included
	// in Result.OracleCalls).
	CalibrationCalls int
}

// DefaultCalibration resolves the library-path logistic calibration
// budget from a query's total oracle budget: 20% of it, at least 30
// calls, at most half.
func DefaultCalibration(budget int) int {
	calib := budget / 5
	if calib < 30 {
		calib = 30
	}
	if calib > budget/2 {
		calib = budget / 2
	}
	return calib
}

// Select answers a SUPG query over multiple proxy columns: fuse, then
// run the configured single-proxy estimator on the fused scores. For
// FuseLogistic, DefaultCalibration of the oracle budget is reserved for
// stacker calibration and the remainder drives threshold estimation;
// the spec's total budget is never exceeded.
func Select(r *randx.Rand, columns [][]float64, orc oracle.Oracle, spec core.Spec, cfg core.Config, fusion Fusion) (*Result, error) {
	f := Fuser{Kind: fusion}
	if fusion == FuseLogistic {
		f.CalibrationBudget = DefaultCalibration(spec.Budget)
	}
	return SelectFused(r, columns, orc, spec, cfg, f)
}

// SelectFused is Select with an explicit Fuser — the thin shim the
// facade keeps over the fusion provider. Calibration shares the query's
// own oracle budget (the engine path instead charges calibration to
// index construction and amortizes it across queries).
func SelectFused(r *randx.Rand, columns [][]float64, orc oracle.Oracle, spec core.Spec, cfg core.Config, f Fuser) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if _, err := validateColumns(columns); err != nil {
		return nil, err
	}

	budgeted := oracle.NewBudgeted(orc, spec.Budget)
	fused, err := f.Fuse(r.Stream(1), columns, budgeted)
	if err != nil {
		return nil, err
	}

	subSpec := spec
	subSpec.Budget = spec.Budget - fused.CalibrationCalls
	tr, err := core.EstimateTau(r.Stream(2), fused.Scores, budgeted, subSpec, cfg)
	if err != nil && err != core.ErrNoPositives {
		return nil, err
	}
	if err == core.ErrNoPositives && spec.Kind == core.PrecisionTarget {
		tr.Tau = math.Inf(1)
	}

	sel := assembleResult(fused.Scores, tr, budgeted)
	return &Result{Result: sel, Fusion: f.Kind, CalibrationCalls: fused.CalibrationCalls}, nil
}

// assembleResult mirrors core's R1 ∪ R2 assembly using the budgeted
// oracle's full label cache (so calibration positives are returned too).
func assembleResult(scores []float64, tr core.TauResult, budgeted *oracle.Budgeted) core.Result {
	include := map[int]struct{}{}
	for _, i := range budgeted.LabeledPositives() {
		include[i] = struct{}{}
	}
	if !math.IsInf(tr.Tau, 1) {
		for i, s := range scores {
			if s >= tr.Tau {
				include[i] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(include))
	for i := range include { //supg:nondeterminism-ok set membership only; out is sorted before it is returned
		out = append(out, i)
	}
	sort.Ints(out)
	return core.Result{Indices: out, Tau: tr.Tau, OracleCalls: budgeted.Used()}
}
