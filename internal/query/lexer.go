// Package query implements the SUPG query language of the paper's
// Figures 3 and 14:
//
//	SELECT * FROM table_name
//	WHERE filter_predicate
//	ORACLE LIMIT o
//	USING proxy_estimates
//	[RECALL | PRECISION] TARGET t
//	WITH PROBABILITY p
//
// and the joint-target form without an oracle limit:
//
//	SELECT * FROM table_name
//	WHERE filter_predicate
//	USING proxy_estimates
//	RECALL TARGET tr
//	PRECISION TARGET tp
//	WITH PROBABILITY p
//
// The package provides a lexer, AST, recursive-descent parser, and a
// planner that lowers a parsed query onto core.Spec / core.JointSpec.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokStar
	tokLParen
	tokRParen
	tokComma
	tokEquals
	tokPercent
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokStar:
		return "'*'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokEquals:
		return "'='"
	case tokPercent:
		return "'%'"
	}
	return fmt.Sprintf("tokenKind(%d)", int(k))
}

// token is one lexeme with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer splits SUPG query text into tokens. Keywords are returned as
// tokIdent; the parser matches them case-insensitively.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// Error is a query parse error with position information.
type Error struct {
	Pos     int
	Message string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("query: at offset %d: %s", e.Pos, e.Message)
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '=':
		l.pos++
		return token{tokEquals, "=", start}, nil
	case c == '%':
		l.pos++
		return token{tokPercent, "%", start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf(start, "unterminated string literal")
		}
		l.pos++ // closing quote
		return token{tokString, sb.String(), start}, nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == '_' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return token{tokNumber, strings.ReplaceAll(l.src[start:l.pos], "_", ""), start}, nil
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenizes the whole input (testing helper and parser driver).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
