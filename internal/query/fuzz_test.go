package query

import (
	"reflect"
	"testing"
)

// FuzzParse asserts the parser's two fuzz invariants on arbitrary
// input: it never panics, and every accepted query round-trips through
// its canonical rendering — Parse(q.String()) succeeds, produces the
// same AST, and renders to the same text (String is a fixed point).
// The committed corpus under testdata/fuzz/FuzzParse covers every
// clause of the grammar, including ORACLE LIMIT ... REUSE FREE and the
// multi-proxy FUSE(...) [CALIBRATE n] score sources.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		rtQuery,
		fuseQuery,
		`SELECT * FROM docs WHERE rel(d) ORACLE LIMIT 500 USING bert(d) PRECISION TARGET 80% WITH PROBABILITY 99%`,
		`SELECT * FROM t WHERE o(x) USING p(x) RECALL TARGET 90% PRECISION TARGET 80% WITH PROBABILITY 95%`,
		`SELECT * FROM v WHERE o(x) = true ORACLE LIMIT 500 REUSE FREE USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`,
		`SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(mean, p1(x), p2(x), p3(x)) RECALL TARGET 90% WITH PROBABILITY 95%`,
		`SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(max, p(x)) RECALL TARGET 90% WITH PROBABILITY 95%`,
		`SELECT * FROM t WHERE o(x) USING FUSE(logistic, a(x), b(x)) CALIBRATE 50 RECALL TARGET 90% PRECISION TARGET 80% WITH PROBABILITY 95%`,
		`select * from t where is_match oracle limit 10 using score recall target 0.07 with probability 0.5`,
		`SELECT * FROM t WHERE f(x) = "multi word" ORACLE LIMIT 10 USING p(x) = 'single' RECALL TARGET 95 WITH PROBABILITY 95%`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		text := q.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical text failed to re-parse: %v\ninput:    %q\ncanonical: %q", err, src, text)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("re-parse changed the AST:\ninput: %q\nfirst:  %#v\nsecond: %#v", src, q, q2)
		}
		if text2 := q2.String(); text2 != text {
			t.Fatalf("String is not a fixed point:\nfirst:  %q\nsecond: %q", text, text2)
		}
	})
}
