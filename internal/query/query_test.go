package query

import (
	"strings"
	"testing"

	"supg/internal/core"
)

const rtQuery = `
SELECT * FROM hummingbird_video
WHERE HUMMINGBIRD_PRESENT(frame) = True
ORACLE LIMIT 10000
USING DNN_CLASSIFIER(frame) = "hummingbird"
RECALL TARGET 95%
WITH PROBABILITY 95%`

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`SELECT * FROM t WHERE f(x) = 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokStar, tokIdent, tokIdent, tokIdent, tokIdent, tokLParen, tokIdent, tokRParen, tokEquals, tokNumber, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d: kind %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexerStringsAndComments(t *testing.T) {
	toks, err := lexAll(`USING f(x) = "multi word" -- trailing comment
	'single'`)
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	for _, tk := range toks {
		if tk.kind == tokString {
			strs = append(strs, tk.text)
		}
	}
	if len(strs) != 2 || strs[0] != "multi word" || strs[1] != "single" {
		t.Fatalf("strings = %v", strs)
	}
}

func TestLexerUnterminatedString(t *testing.T) {
	if _, err := lexAll(`WHERE f(x) = "oops`); err == nil {
		t.Fatal("unterminated string should error")
	}
}

func TestLexerNumberForms(t *testing.T) {
	toks, err := lexAll(`0.95 95 1e-3 10_000`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0.95", "95", "1e-3", "10000"}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].text != w {
			t.Fatalf("number %d: %+v, want %q", i, toks[i], w)
		}
	}
}

func TestLexerUnexpectedCharacter(t *testing.T) {
	if _, err := lexAll(`SELECT ; FROM`); err == nil {
		t.Fatal("';' should be rejected")
	}
}

func TestParseRecallTarget(t *testing.T) {
	q, err := Parse(rtQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != RecallTargetQuery {
		t.Errorf("type %v", q.Type)
	}
	if q.Table != "hummingbird_video" {
		t.Errorf("table %q", q.Table)
	}
	if q.Oracle.Func != "HUMMINGBIRD_PRESENT" || q.Oracle.Args[0] != "frame" || q.Oracle.Compare != "True" {
		t.Errorf("oracle predicate %+v", q.Oracle)
	}
	if len(q.Proxies) != 1 || q.Proxies[0].Func != "DNN_CLASSIFIER" || q.Proxies[0].Compare != "hummingbird" {
		t.Errorf("proxy predicates %+v", q.Proxies)
	}
	if q.Fusion != FusionNone {
		t.Errorf("single-proxy query parsed with fusion %v", q.Fusion)
	}
	if q.OracleLimit != 10000 {
		t.Errorf("limit %d", q.OracleLimit)
	}
	if q.RecallTarget != 0.95 || q.Probability != 0.95 {
		t.Errorf("targets %v %v", q.RecallTarget, q.Probability)
	}
	if d := q.Delta(); d < 0.049 || d > 0.051 {
		t.Errorf("delta %v", d)
	}
}

func TestParsePrecisionTarget(t *testing.T) {
	q, err := Parse(`SELECT * FROM docs WHERE rel(d) ORACLE LIMIT 500 USING bert(d) PRECISION TARGET 0.8 WITH PROBABILITY 0.99`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != PrecisionTargetQuery || q.PrecisionTarget != 0.8 || q.Probability != 0.99 {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseJointTarget(t *testing.T) {
	q, err := Parse(`
		SELECT * FROM t
		WHERE oracle(x)
		USING proxy(x)
		RECALL TARGET 90%
		PRECISION TARGET 80%
		WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != JointTargetQuery {
		t.Fatalf("type %v", q.Type)
	}
	if q.RecallTarget != 0.9 || q.PrecisionTarget != 0.8 {
		t.Errorf("targets %v %v", q.RecallTarget, q.PrecisionTarget)
	}
	if q.OracleLimit != 0 {
		t.Errorf("JT query should have no limit, got %d", q.OracleLimit)
	}
}

func TestParseJointOrderInsensitive(t *testing.T) {
	q, err := Parse(`SELECT * FROM t WHERE o(x) USING p(x)
		PRECISION TARGET 80% RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != JointTargetQuery || q.RecallTarget != 0.9 || q.PrecisionTarget != 0.8 {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select * from t where o(x) oracle limit 100 using p(x) recall target 90% with probability 95%`); err != nil {
		t.Fatalf("lowercase keywords rejected: %v", err)
	}
}

func TestParsePercentAndFractionForms(t *testing.T) {
	forms := []string{"90%", "0.9", "90"}
	for _, f := range forms {
		q, err := Parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) RECALL TARGET ` + f + ` WITH PROBABILITY 95%`)
		if err != nil {
			t.Fatalf("form %q: %v", f, err)
		}
		if q.RecallTarget != 0.9 {
			t.Fatalf("form %q parsed as %v", f, q.RecallTarget)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing select", `FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"missing star", `SELECT x FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"missing where", `SELECT * FROM t ORACLE LIMIT 10 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"missing using", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 10 RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"missing target", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) WITH PROBABILITY 95%`},
		{"missing probability", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) RECALL TARGET 90%`},
		{"bad limit", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 1.5 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"zero limit", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 0 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"jt with limit", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) RECALL TARGET 90% PRECISION TARGET 80% WITH PROBABILITY 95%`},
		{"trailing", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95% EXTRA`},
		{"probability 1", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) RECALL TARGET 90% WITH PROBABILITY 1.0`},
		{"target 0", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 10 USING p(x) RECALL TARGET 0 WITH PROBABILITY 95%`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT abc USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err == nil {
		t.Fatal("expected error")
	}
	var qe *Error
	if !asQueryError(err, &qe) {
		t.Fatalf("error %T is not *Error", err)
	}
	if qe.Pos <= 0 {
		t.Errorf("error position %d", qe.Pos)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error message %q should include offset", err.Error())
	}
}

func asQueryError(err error, target **Error) bool {
	if e, ok := err.(*Error); ok {
		*target = e
		return true
	}
	return false
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		rtQuery,
		`SELECT * FROM docs WHERE rel(d) ORACLE LIMIT 500 USING bert(d) PRECISION TARGET 80% WITH PROBABILITY 99%`,
		`SELECT * FROM t WHERE o(x) USING p(x) RECALL TARGET 90% PRECISION TARGET 80% WITH PROBABILITY 95%`,
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", q1, q2)
		}
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{Func: "F", Args: []string{"a", "b"}, Compare: "yes", HasCompare: true}
	if got := p.String(); got != `F(a, b) = yes` && got != `F(a, b) = "yes"` {
		t.Errorf("predicate string %q", got)
	}
}

func TestBuildPlanRT(t *testing.T) {
	q, err := Parse(rtQuery)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanBudgeted {
		t.Errorf("kind %v", p.Kind)
	}
	if p.Spec.Kind != core.RecallTarget || p.Spec.Gamma != 0.95 || p.Spec.Budget != 10000 {
		t.Errorf("spec %+v", p.Spec)
	}
	if p.Config.Method != core.MethodISCI {
		t.Errorf("default config should be SUPG, got %v", p.Config.Method)
	}
	if p.OracleUDF != "HUMMINGBIRD_PRESENT" || p.Source.Primary() != "DNN_CLASSIFIER" {
		t.Errorf("UDFs %q %q", p.OracleUDF, p.Source.Primary())
	}
	if !p.Source.Single() || p.Source.CacheKey("x") != "DNN_CLASSIFIER" {
		t.Errorf("single-proxy source %+v should cache under the bare proxy name", p.Source)
	}
}

func TestBuildPlanJT(t *testing.T) {
	q, err := Parse(`SELECT * FROM t WHERE o(x) USING p(x) RECALL TARGET 90% PRECISION TARGET 80% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(q, PlanOptions{JointStageBudget: 777})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanJoint || p.JointSpec.StageBudget != 777 {
		t.Errorf("plan %+v", p)
	}
	if p.JointSpec.GammaRecall != 0.9 || p.JointSpec.GammaPrecision != 0.8 {
		t.Errorf("joint spec %+v", p.JointSpec)
	}
}

func TestBuildPlanConfigOverride(t *testing.T) {
	q, err := Parse(rtQuery)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultUCI()
	p, err := BuildPlan(q, PlanOptions{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.Method != core.MethodUCI {
		t.Errorf("override ignored: %v", p.Config.Method)
	}
}

func TestTargetTypeStrings(t *testing.T) {
	if RecallTargetQuery.String() == "" || JointTargetQuery.String() == "" {
		t.Error("TargetType strings empty")
	}
}

func TestBarePredicateNoArgs(t *testing.T) {
	q, err := Parse(`SELECT * FROM t WHERE is_match ORACLE LIMIT 10 USING score RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Oracle.Func != "is_match" || len(q.Oracle.Args) != 0 {
		t.Errorf("bare predicate %+v", q.Oracle)
	}
}

func TestParseReuseFree(t *testing.T) {
	q, err := Parse(`
		SELECT * FROM v
		WHERE o(x) = true
		ORACLE LIMIT 500 REUSE FREE
		USING p(x)
		RECALL TARGET 90%
		WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.FreeReuse {
		t.Error("REUSE FREE not parsed")
	}
	if q.OracleLimit != 500 {
		t.Errorf("OracleLimit = %d, want 500", q.OracleLimit)
	}
	// Round trip through the canonical rendering.
	if !strings.Contains(q.String(), "ORACLE LIMIT 500 REUSE FREE") {
		t.Errorf("String() lost the clause: %q", q.String())
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", q.String(), err)
	}
	if !q2.FreeReuse {
		t.Error("round trip lost FreeReuse")
	}

	// The plan carries the flag.
	plan, err := BuildPlan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.FreeReuse {
		t.Error("plan dropped FreeReuse")
	}
}

func TestParseReuseFreeErrors(t *testing.T) {
	// REUSE must be followed by FREE.
	if _, err := Parse(`
		SELECT * FROM v WHERE o(x) = true
		ORACLE LIMIT 500 REUSE
		USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`); err == nil {
		t.Error("bare REUSE accepted")
	}
	// A query without ORACLE LIMIT cannot take the clause (REUSE parses
	// as an unexpected identifier).
	if _, err := Parse(`
		SELECT * FROM v WHERE o(x) = true
		USING p(x) RECALL TARGET 90% PRECISION TARGET 90%
		REUSE FREE WITH PROBABILITY 95%`); err == nil {
		t.Error("REUSE FREE without ORACLE LIMIT accepted")
	}
	// Programmatic construction is rejected by Validate.
	q := &Query{
		Table:           "v",
		Oracle:          Predicate{Func: "o"},
		Proxies:         []Predicate{{Func: "p"}},
		Type:            JointTargetQuery,
		RecallTarget:    0.9,
		PrecisionTarget: 0.9,
		Probability:     0.95,
		FreeReuse:       true,
	}
	if err := q.Validate(); err == nil {
		t.Error("joint-target query with FreeReuse validated")
	}
}

const fuseQuery = `
SELECT * FROM video
WHERE truth(frame) = true
ORACLE LIMIT 1000
USING FUSE(logistic, fast(frame), slow(frame)) CALIBRATE 200
RECALL TARGET 90%
WITH PROBABILITY 95%`

func TestParseFuseLogistic(t *testing.T) {
	q, err := Parse(fuseQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fusion != FusionLogistic {
		t.Errorf("fusion %v", q.Fusion)
	}
	if len(q.Proxies) != 2 || q.Proxies[0].Func != "fast" || q.Proxies[1].Func != "slow" {
		t.Errorf("proxies %+v", q.Proxies)
	}
	if q.CalibrationBudget != 200 {
		t.Errorf("calibration %d", q.CalibrationBudget)
	}
	// Canonical rendering round-trips.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", q.String(), err)
	}
	if q.String() != q2.String() {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", q, q2)
	}
	if !strings.Contains(q.String(), "FUSE(logistic, fast(frame), slow(frame)) CALIBRATE 200") {
		t.Errorf("String() = %q", q.String())
	}
}

func TestParseFuseMeanAndMax(t *testing.T) {
	for _, kind := range []string{"mean", "MAX"} {
		q, err := Parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(` + kind +
			`, p1(x), p2(x), p3(x)) RECALL TARGET 90% WITH PROBABILITY 95%`)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(q.Proxies) != 3 {
			t.Errorf("%s: proxies %+v", kind, q.Proxies)
		}
		if q.Fusion != FusionMean && q.Fusion != FusionMax {
			t.Errorf("%s: fusion %v", kind, q.Fusion)
		}
		if q.CalibrationBudget != 0 {
			t.Errorf("%s: calibration %d", kind, q.CalibrationBudget)
		}
	}
}

func TestParseFuseSingleMemberNormalizes(t *testing.T) {
	// mean/max of one column is the column: the parser folds the
	// degenerate form to the classic single-proxy query, so plans,
	// random streams, and index cache keys are byte-identical.
	legacy, err := Parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING p(x) RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"mean", "max"} {
		q, err := Parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(` + kind +
			`, p(x)) RECALL TARGET 90% WITH PROBABILITY 95%`)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if q.Fusion != FusionNone {
			t.Errorf("%s: fusion %v not normalized", kind, q.Fusion)
		}
		if q.String() != legacy.String() {
			t.Errorf("%s: canonical text %q != legacy %q", kind, q.String(), legacy.String())
		}
	}
	// Logistic is NOT the identity on one column (the stacker recalibrates
	// it), so the single-member form survives.
	q, err := Parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(logistic, p(x)) RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fusion != FusionLogistic || len(q.Proxies) != 1 {
		t.Errorf("single-member logistic parsed as %+v", q)
	}
}

func TestParseFuseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown strategy", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(median, p1(x), p2(x)) RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"no members", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(mean) RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"unclosed", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(mean, p1(x) RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"calibrate on mean", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(mean, p1(x), p2(x)) CALIBRATE 50 RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"calibrate zero", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(logistic, p1(x), p2(x)) CALIBRATE 0 RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"calibrate fractional", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(logistic, p1(x), p2(x)) CALIBRATE 12.5 RECALL TARGET 90% WITH PROBABILITY 95%`},
		{"calibrate below minimum", `SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING FUSE(logistic, p1(x), p2(x)) CALIBRATE 5 RECALL TARGET 90% WITH PROBABILITY 95%`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// A proxy UDF named fuse still works without parentheses.
	q, err := Parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 100 USING fuse RECALL TARGET 90% WITH PROBABILITY 95%`)
	if err != nil {
		t.Fatalf("bare fuse proxy: %v", err)
	}
	if q.Proxies[0].Func != "fuse" {
		t.Errorf("bare fuse parsed as %+v", q.Proxies)
	}
}

func TestBuildPlanFused(t *testing.T) {
	q, err := Parse(fuseQuery)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := p.Source
	if src.Single() || src.Fusion != FusionLogistic || src.CalibrationBudget != 200 {
		t.Errorf("source %+v", src)
	}
	if len(src.Proxies) != 2 || src.Primary() != "fast" {
		t.Errorf("source proxies %+v", src.Proxies)
	}
	key := src.CacheKey("truth")
	if key != "fuse:logistic:fast,slow:calib=200:oracle=truth" {
		t.Errorf("cache key %q", key)
	}
}

func TestBuildPlanCalibrationDefaults(t *testing.T) {
	parse := func(src string) *Query {
		t.Helper()
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	// Budgeted: a fifth of the limit, clamped to [30, limit/2].
	q := parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 1000 USING FUSE(logistic, p1(x), p2(x)) RECALL TARGET 90% WITH PROBABILITY 95%`)
	p, err := BuildPlan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Source.CalibrationBudget != 200 {
		t.Errorf("default calibration %d, want 200", p.Source.CalibrationBudget)
	}
	q = parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 40 USING FUSE(logistic, p1(x), p2(x)) RECALL TARGET 90% WITH PROBABILITY 95%`)
	if p, err = BuildPlan(q, PlanOptions{}); err != nil {
		t.Fatal(err)
	} else if p.Source.CalibrationBudget != 20 {
		t.Errorf("clamped calibration %d, want 20 (half of 40)", p.Source.CalibrationBudget)
	}
	// Too small to calibrate at all.
	q = parse(`SELECT * FROM t WHERE o(x) ORACLE LIMIT 15 USING FUSE(logistic, p1(x), p2(x)) RECALL TARGET 90% WITH PROBABILITY 95%`)
	if _, err = BuildPlan(q, PlanOptions{}); err == nil {
		t.Error("tiny ORACLE LIMIT with logistic fusion should fail planning")
	}
	// Joint queries have no limit; a fixed default applies.
	q = parse(`SELECT * FROM t WHERE o(x) USING FUSE(logistic, p1(x), p2(x)) RECALL TARGET 90% PRECISION TARGET 80% WITH PROBABILITY 95%`)
	if p, err = BuildPlan(q, PlanOptions{}); err != nil {
		t.Fatal(err)
	} else if p.Source.CalibrationBudget != 200 {
		t.Errorf("joint default calibration %d, want 200", p.Source.CalibrationBudget)
	}
}

func TestValidateFusionShapes(t *testing.T) {
	base := Query{
		Table:        "t",
		Oracle:       Predicate{Func: "o"},
		Type:         RecallTargetQuery,
		OracleLimit:  100,
		RecallTarget: 0.9,
		Probability:  0.95,
	}
	// Two proxies without a FUSE clause.
	q := base
	q.Proxies = []Predicate{{Func: "a"}, {Func: "b"}}
	if err := q.Validate(); err == nil {
		t.Error("multi-proxy without FUSE validated")
	}
	// Empty member name.
	q = base
	q.Proxies = []Predicate{{Func: "a"}, {}}
	q.Fusion = FusionMean
	if err := q.Validate(); err == nil {
		t.Error("empty FUSE member validated")
	}
	// Calibration on a label-free fusion.
	q = base
	q.Proxies = []Predicate{{Func: "a"}, {Func: "b"}}
	q.Fusion = FusionMax
	q.CalibrationBudget = 50
	if err := q.Validate(); err == nil {
		t.Error("CALIBRATE on max fusion validated")
	}
}

func TestFusionKindStrings(t *testing.T) {
	if FusionNone.String() != "none" || FusionMean.String() != "mean" ||
		FusionMax.String() != "max" || FusionLogistic.String() != "logistic" {
		t.Error("fusion kind strings")
	}
	if FusionKind(99).String() == "" {
		t.Error("unknown fusion kind string empty")
	}
	if !FusionLogistic.Calibrated() || FusionMean.Calibrated() {
		t.Error("Calibrated misreports")
	}
}

func TestParseWithoutReuseFreeDefaultsCharged(t *testing.T) {
	q, err := Parse(rtQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.FreeReuse {
		t.Error("FreeReuse defaulted to true")
	}
	if strings.Contains(q.String(), "REUSE") {
		t.Errorf("String() invented a REUSE clause: %q", q.String())
	}
}
