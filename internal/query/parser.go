package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a SUPG statement in the Figure 3 / Figure 14 grammar and
// validates it. Keywords are case-insensitive; clauses must appear in
// the order shown in the paper (SELECT, FROM, WHERE, [ORACLE LIMIT],
// USING, targets, WITH PROBABILITY).
func Parse(src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		t := p.peek()
		return &Error{Pos: t.pos, Message: fmt.Sprintf("expected keyword %s, found %s %q", strings.ToUpper(kw), t.kind, t.text)}
	}
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return token{}, &Error{Pos: t.pos, Message: fmt.Sprintf("expected %s, found %s %q", kind, t.kind, t.text)}
	}
	return p.advance(), nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokStar); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	q.Table = table.text

	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	q.Oracle, err = p.parsePredicate()
	if err != nil {
		return nil, err
	}

	hasLimit := false
	if p.keyword("oracle") {
		if err := p.expectKeyword("limit"); err != nil {
			return nil, err
		}
		num, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		limit, err := strconv.ParseFloat(num.text, 64)
		if err != nil || limit != float64(int(limit)) || limit <= 0 {
			return nil, &Error{Pos: num.pos, Message: fmt.Sprintf("ORACLE LIMIT must be a positive integer, got %q", num.text)}
		}
		q.OracleLimit = int(limit)
		hasLimit = true
		if p.keyword("reuse") {
			if err := p.expectKeyword("free"); err != nil {
				return nil, err
			}
			q.FreeReuse = true
		}
	}

	if err := p.expectKeyword("using"); err != nil {
		return nil, err
	}
	if err := p.parseScoreSource(q); err != nil {
		return nil, err
	}

	// Targets: RECALL TARGET t, PRECISION TARGET t, or both (JT).
	hasRecall, hasPrecision := false, false
	for {
		switch {
		case !hasRecall && p.keyword("recall"):
			if err := p.expectKeyword("target"); err != nil {
				return nil, err
			}
			q.RecallTarget, err = p.parseFraction()
			if err != nil {
				return nil, err
			}
			hasRecall = true
			continue
		case !hasPrecision && p.keyword("precision"):
			if err := p.expectKeyword("target"); err != nil {
				return nil, err
			}
			q.PrecisionTarget, err = p.parseFraction()
			if err != nil {
				return nil, err
			}
			hasPrecision = true
			continue
		}
		break
	}
	switch {
	case hasRecall && hasPrecision:
		q.Type = JointTargetQuery
		if hasLimit {
			return nil, &Error{Pos: p.peek().pos, Message: "joint-target queries must not specify ORACLE LIMIT (the oracle may be queried an unbounded number of times)"}
		}
	case hasRecall:
		q.Type = RecallTargetQuery
	case hasPrecision:
		q.Type = PrecisionTargetQuery
	default:
		return nil, &Error{Pos: p.peek().pos, Message: "expected RECALL TARGET and/or PRECISION TARGET clause"}
	}

	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("probability"); err != nil {
		return nil, err
	}
	q.Probability, err = p.parseFraction()
	if err != nil {
		return nil, err
	}

	if t := p.peek(); t.kind != tokEOF {
		return nil, &Error{Pos: t.pos, Message: fmt.Sprintf("unexpected trailing input starting at %q", t.text)}
	}
	return q, nil
}

// parseScoreSource parses the USING clause body: either a single proxy
// predicate, or FUSE(strategy, p1(...), p2(...), ...) [CALIBRATE n].
// FUSE followed by '(' is reserved in this position; a proxy UDF named
// FUSE can still appear without parentheses (and anywhere else in the
// query). A one-member mean/max FUSE is normalized to the plain
// single-proxy form — the fusion is the identity, and normalizing here
// keeps the degenerate source byte-identical to the classic form in the
// plan, the per-query random stream, and the engine's index cache.
func (p *parser) parseScoreSource(q *Query) error {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, "fuse") && p.toks[p.pos+1].kind == tokLParen {
		p.advance() // FUSE
		p.advance() // (
		name, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		kind, ok := parseFusionKind(name.text)
		if !ok {
			return &Error{Pos: name.pos, Message: fmt.Sprintf("unknown fusion strategy %q (want mean, max, or logistic)", name.text)}
		}
		q.Fusion = kind
		for {
			if _, err := p.expect(tokComma); err != nil {
				if len(q.Proxies) > 0 && p.peek().kind == tokRParen {
					break
				}
				return err
			}
			pred, err := p.parsePredicate()
			if err != nil {
				return err
			}
			q.Proxies = append(q.Proxies, pred)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		if p.keyword("calibrate") {
			num, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			calib, err := strconv.ParseFloat(num.text, 64)
			if err != nil || calib != float64(int(calib)) || calib <= 0 {
				return &Error{Pos: num.pos, Message: fmt.Sprintf("CALIBRATE must be a positive integer, got %q", num.text)}
			}
			q.CalibrationBudget = int(calib)
		}
		if len(q.Proxies) == 1 && !q.Fusion.Calibrated() {
			q.Fusion = FusionNone
		}
		return nil
	}
	pred, err := p.parsePredicate()
	if err != nil {
		return err
	}
	q.Proxies = []Predicate{pred}
	return nil
}

// parsePredicate parses FUNC(arg, ...) [= literal].
func (p *parser) parsePredicate() (Predicate, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Predicate{}, err
	}
	pred := Predicate{Func: name.text}
	if p.peek().kind == tokLParen {
		p.advance()
		for p.peek().kind != tokRParen {
			arg, err := p.expect(tokIdent)
			if err != nil {
				return Predicate{}, err
			}
			pred.Args = append(pred.Args, arg.text)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Predicate{}, err
		}
	}
	if p.peek().kind == tokEquals {
		p.advance()
		t := p.peek()
		switch t.kind {
		case tokIdent, tokString, tokNumber:
			p.advance()
			pred.Compare = t.text
			pred.HasCompare = true
		default:
			return Predicate{}, &Error{Pos: t.pos, Message: fmt.Sprintf("expected literal after '=', found %s", t.kind)}
		}
	}
	return pred, nil
}

// parseFraction parses a probability/target expressed either as a
// percentage ("95%", "95 %") or a fraction ("0.95").
func (p *parser) parseFraction() (float64, error) {
	num, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return 0, &Error{Pos: num.pos, Message: fmt.Sprintf("bad number %q: %v", num.text, err)}
	}
	if p.peek().kind == tokPercent {
		p.advance()
		v /= 100
	} else if v > 1 {
		// "RECALL TARGET 95" without a percent sign clearly means 95%.
		v /= 100
	}
	return v, nil
}
