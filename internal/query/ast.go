package query

import (
	"fmt"
	"strings"
)

// TargetType distinguishes the query forms of Figures 3 and 14.
type TargetType int

const (
	// RecallTargetQuery is a Figure 3 RT query.
	RecallTargetQuery TargetType = iota
	// PrecisionTargetQuery is a Figure 3 PT query.
	PrecisionTargetQuery
	// JointTargetQuery is a Figure 14 query with both targets.
	JointTargetQuery
)

// String implements fmt.Stringer.
func (t TargetType) String() string {
	switch t {
	case RecallTargetQuery:
		return "RECALL TARGET"
	case PrecisionTargetQuery:
		return "PRECISION TARGET"
	case JointTargetQuery:
		return "RECALL+PRECISION TARGET"
	}
	return fmt.Sprintf("TargetType(%d)", int(t))
}

// Predicate is a UDF invocation optionally compared against a literal:
// HUMMINGBIRD_PRESENT(frame) = True, or DNN_CLASSIFIER(frame) = "hummingbird".
type Predicate struct {
	// Func is the UDF name.
	Func string
	// Args are the argument identifiers (column references).
	Args []string
	// Compare is the comparison literal; empty when the predicate is
	// used bare (implicitly boolean / score-valued).
	Compare string
	// HasCompare reports whether an "=" clause was present.
	HasCompare bool
}

// String renders the predicate in query syntax.
func (p Predicate) String() string {
	var sb strings.Builder
	sb.WriteString(p.Func)
	sb.WriteByte('(')
	sb.WriteString(strings.Join(p.Args, ", "))
	sb.WriteByte(')')
	if p.HasCompare {
		fmt.Fprintf(&sb, " = %s", quoteIfNeeded(p.Compare))
	}
	return sb.String()
}

// Query is the parsed form of a SUPG statement.
type Query struct {
	// Table is the FROM target.
	Table string
	// Oracle is the WHERE predicate (the ground-truth filter).
	Oracle Predicate
	// Proxy is the USING expression (the proxy-score source).
	Proxy Predicate
	// Type selects RT / PT / JT semantics.
	Type TargetType
	// OracleLimit is the ORACLE LIMIT budget; 0 for JT queries.
	OracleLimit int
	// FreeReuse is the ORACLE LIMIT ... REUSE FREE modifier: labels
	// already in the cross-query label store are served without
	// consuming budget, stretching the effective sample size. Without
	// it (the default, "charged" mode) warm store hits still consume
	// budget units, so results are byte-identical to a cold run.
	FreeReuse bool
	// RecallTarget is set for RT and JT queries (fraction in (0,1]).
	RecallTarget float64
	// PrecisionTarget is set for PT and JT queries.
	PrecisionTarget float64
	// Probability is the WITH PROBABILITY success level (1 - delta).
	Probability float64
}

// Delta returns the failure probability 1 - Probability.
func (q *Query) Delta() float64 { return 1 - q.Probability }

// String renders the query back to canonical syntax.
func (q *Query) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT * FROM %s\n", q.Table)
	fmt.Fprintf(&sb, "WHERE %s\n", q.Oracle)
	if q.Type != JointTargetQuery {
		fmt.Fprintf(&sb, "ORACLE LIMIT %d", q.OracleLimit)
		if q.FreeReuse {
			sb.WriteString(" REUSE FREE")
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "USING %s\n", q.Proxy)
	switch q.Type {
	case RecallTargetQuery:
		fmt.Fprintf(&sb, "RECALL TARGET %s\n", formatPercent(q.RecallTarget))
	case PrecisionTargetQuery:
		fmt.Fprintf(&sb, "PRECISION TARGET %s\n", formatPercent(q.PrecisionTarget))
	case JointTargetQuery:
		fmt.Fprintf(&sb, "RECALL TARGET %s\n", formatPercent(q.RecallTarget))
		fmt.Fprintf(&sb, "PRECISION TARGET %s\n", formatPercent(q.PrecisionTarget))
	}
	fmt.Fprintf(&sb, "WITH PROBABILITY %s", formatPercent(q.Probability))
	return sb.String()
}

// Validate checks semantic constraints beyond the grammar.
func (q *Query) Validate() error {
	if q.Table == "" {
		return fmt.Errorf("query: missing table name")
	}
	if q.Oracle.Func == "" {
		return fmt.Errorf("query: missing WHERE oracle predicate")
	}
	if q.Proxy.Func == "" {
		return fmt.Errorf("query: missing USING proxy expression")
	}
	if q.Probability <= 0 || q.Probability >= 1 {
		return fmt.Errorf("query: WITH PROBABILITY %g outside (0, 1)", q.Probability)
	}
	checkTarget := func(name string, v float64) error {
		if v <= 0 || v > 1 {
			return fmt.Errorf("query: %s %g outside (0, 1]", name, v)
		}
		return nil
	}
	switch q.Type {
	case RecallTargetQuery:
		if err := checkTarget("RECALL TARGET", q.RecallTarget); err != nil {
			return err
		}
		if q.OracleLimit <= 0 {
			return fmt.Errorf("query: RT query requires a positive ORACLE LIMIT")
		}
	case PrecisionTargetQuery:
		if err := checkTarget("PRECISION TARGET", q.PrecisionTarget); err != nil {
			return err
		}
		if q.OracleLimit <= 0 {
			return fmt.Errorf("query: PT query requires a positive ORACLE LIMIT")
		}
	case JointTargetQuery:
		if err := checkTarget("RECALL TARGET", q.RecallTarget); err != nil {
			return err
		}
		if err := checkTarget("PRECISION TARGET", q.PrecisionTarget); err != nil {
			return err
		}
		if q.OracleLimit != 0 {
			return fmt.Errorf("query: joint-target queries do not take an ORACLE LIMIT")
		}
		if q.FreeReuse {
			return fmt.Errorf("query: REUSE FREE modifies ORACLE LIMIT, which joint-target queries do not take")
		}
	}
	return nil
}

func formatPercent(v float64) string {
	return fmt.Sprintf("%g%%", v*100)
}

func quoteIfNeeded(s string) string {
	switch strings.ToLower(s) {
	case "true", "false":
		return s
	}
	for _, r := range s {
		if !isIdentPart(r) {
			return "\"" + s + "\""
		}
	}
	if len(s) > 0 && isDigit(s[0]) {
		return s
	}
	return "\"" + s + "\""
}
