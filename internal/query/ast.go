package query

import (
	"fmt"
	"strconv"
	"strings"
)

// TargetType distinguishes the query forms of Figures 3 and 14.
type TargetType int

const (
	// RecallTargetQuery is a Figure 3 RT query.
	RecallTargetQuery TargetType = iota
	// PrecisionTargetQuery is a Figure 3 PT query.
	PrecisionTargetQuery
	// JointTargetQuery is a Figure 14 query with both targets.
	JointTargetQuery
)

// String implements fmt.Stringer.
func (t TargetType) String() string {
	switch t {
	case RecallTargetQuery:
		return "RECALL TARGET"
	case PrecisionTargetQuery:
		return "PRECISION TARGET"
	case JointTargetQuery:
		return "RECALL+PRECISION TARGET"
	}
	return fmt.Sprintf("TargetType(%d)", int(t))
}

// FusionKind names the strategy a FUSE clause uses to combine several
// proxy-score columns into the one column the selection algorithms
// consume. FusionNone is the classic single-proxy form.
type FusionKind int

const (
	// FusionNone is the single-proxy form (no FUSE clause).
	FusionNone FusionKind = iota
	// FusionMean averages the member proxy columns (label-free).
	FusionMean
	// FusionMax takes the per-record maximum (label-free).
	FusionMax
	// FusionLogistic fits a logistic stacker on an oracle-labeled
	// calibration sample and scores every record with it.
	FusionLogistic
)

// String returns the lowercase strategy name used in the FUSE clause
// ("none" for FusionNone, which never renders).
func (f FusionKind) String() string {
	switch f {
	case FusionNone:
		return "none"
	case FusionMean:
		return "mean"
	case FusionMax:
		return "max"
	case FusionLogistic:
		return "logistic"
	}
	return fmt.Sprintf("FusionKind(%d)", int(f))
}

// Calibrated reports whether the fusion needs oracle labels to fit.
func (f FusionKind) Calibrated() bool { return f == FusionLogistic }

// MinCalibration is the smallest CALIBRATE budget a logistic fusion
// accepts — below this a stacker fit is statistically meaningless.
const MinCalibration = 10

// parseFusionKind resolves a FUSE strategy name (case-insensitive).
func parseFusionKind(name string) (FusionKind, bool) {
	switch strings.ToLower(name) {
	case "mean":
		return FusionMean, true
	case "max":
		return FusionMax, true
	case "logistic":
		return FusionLogistic, true
	}
	return FusionNone, false
}

// Predicate is a UDF invocation optionally compared against a literal:
// HUMMINGBIRD_PRESENT(frame) = True, or DNN_CLASSIFIER(frame) = "hummingbird".
type Predicate struct {
	// Func is the UDF name.
	Func string
	// Args are the argument identifiers (column references).
	Args []string
	// Compare is the comparison literal; empty when the predicate is
	// used bare (implicitly boolean / score-valued).
	Compare string
	// HasCompare reports whether an "=" clause was present.
	HasCompare bool
}

// String renders the predicate in query syntax. A predicate without
// arguments renders bare (no parentheses): the two forms parse
// identically, and the bare form keeps a proxy UDF that happens to be
// named "fuse" from rendering as "fuse()" — which the USING clause
// would re-read as an (invalid) FUSE fusion clause.
func (p Predicate) String() string {
	var sb strings.Builder
	sb.WriteString(p.Func)
	if len(p.Args) > 0 {
		sb.WriteByte('(')
		sb.WriteString(strings.Join(p.Args, ", "))
		sb.WriteByte(')')
	}
	if p.HasCompare {
		fmt.Fprintf(&sb, " = %s", quoteIfNeeded(p.Compare))
	}
	return sb.String()
}

// Query is the parsed form of a SUPG statement.
type Query struct {
	// Table is the FROM target.
	Table string
	// Oracle is the WHERE predicate (the ground-truth filter).
	Oracle Predicate
	// Proxies are the USING score-source expressions: exactly one for
	// the classic single-proxy form, one or more inside a FUSE clause.
	Proxies []Predicate
	// Fusion is the FUSE strategy combining Proxies (FusionNone for the
	// single-proxy form). Parse normalizes a one-member label-free FUSE
	// (mean/max of a single column is the column itself) to FusionNone,
	// so the degenerate fused form is byte-identical to the classic one
	// everywhere downstream — plan, random stream, and index cache.
	Fusion FusionKind
	// CalibrationBudget is the CALIBRATE clause: the number of oracle
	// labels a logistic fusion may spend fitting its stacker. 0 lets the
	// planner pick a default.
	CalibrationBudget int
	// Type selects RT / PT / JT semantics.
	Type TargetType
	// OracleLimit is the ORACLE LIMIT budget; 0 for JT queries.
	OracleLimit int
	// FreeReuse is the ORACLE LIMIT ... REUSE FREE modifier: labels
	// already in the cross-query label store are served without
	// consuming budget, stretching the effective sample size. Without
	// it (the default, "charged" mode) warm store hits still consume
	// budget units, so results are byte-identical to a cold run.
	FreeReuse bool
	// RecallTarget is set for RT and JT queries (fraction in (0,1]).
	RecallTarget float64
	// PrecisionTarget is set for PT and JT queries.
	PrecisionTarget float64
	// Probability is the WITH PROBABILITY success level (1 - delta).
	Probability float64
}

// Delta returns the failure probability 1 - Probability.
func (q *Query) Delta() float64 { return 1 - q.Probability }

// String renders the query back to canonical syntax.
func (q *Query) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT * FROM %s\n", q.Table)
	fmt.Fprintf(&sb, "WHERE %s\n", q.Oracle)
	if q.Type != JointTargetQuery {
		fmt.Fprintf(&sb, "ORACLE LIMIT %d", q.OracleLimit)
		if q.FreeReuse {
			sb.WriteString(" REUSE FREE")
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "USING %s\n", q.usingClause())
	switch q.Type {
	case RecallTargetQuery:
		fmt.Fprintf(&sb, "RECALL TARGET %s\n", formatPercent(q.RecallTarget))
	case PrecisionTargetQuery:
		fmt.Fprintf(&sb, "PRECISION TARGET %s\n", formatPercent(q.PrecisionTarget))
	case JointTargetQuery:
		fmt.Fprintf(&sb, "RECALL TARGET %s\n", formatPercent(q.RecallTarget))
		fmt.Fprintf(&sb, "PRECISION TARGET %s\n", formatPercent(q.PrecisionTarget))
	}
	fmt.Fprintf(&sb, "WITH PROBABILITY %s", formatPercent(q.Probability))
	return sb.String()
}

// usingClause renders the USING score source canonically: the plain
// predicate for single-proxy sources, FUSE(kind, p1, p2, ...) with an
// optional CALIBRATE suffix otherwise. A one-member label-free FUSE
// renders as the plain form (the fusion is the identity), matching the
// normalization Parse applies, so String is a canonical form.
func (q *Query) usingClause() string {
	degenerate := len(q.Proxies) == 1 && !q.Fusion.Calibrated()
	if q.Fusion == FusionNone || degenerate {
		if len(q.Proxies) == 0 {
			return ""
		}
		return q.Proxies[0].String()
	}
	var sb strings.Builder
	sb.WriteString("FUSE(")
	sb.WriteString(q.Fusion.String())
	for _, p := range q.Proxies {
		sb.WriteString(", ")
		sb.WriteString(p.String())
	}
	sb.WriteByte(')')
	if q.CalibrationBudget > 0 {
		fmt.Fprintf(&sb, " CALIBRATE %d", q.CalibrationBudget)
	}
	return sb.String()
}

// Validate checks semantic constraints beyond the grammar.
func (q *Query) Validate() error {
	if q.Table == "" {
		return fmt.Errorf("query: missing table name")
	}
	if q.Oracle.Func == "" {
		return fmt.Errorf("query: missing WHERE oracle predicate")
	}
	if len(q.Proxies) == 0 || q.Proxies[0].Func == "" {
		return fmt.Errorf("query: missing USING proxy expression")
	}
	for i, p := range q.Proxies {
		if p.Func == "" {
			return fmt.Errorf("query: FUSE member %d has no proxy name", i)
		}
	}
	if q.Fusion == FusionNone && len(q.Proxies) > 1 {
		return fmt.Errorf("query: %d proxies require a FUSE clause", len(q.Proxies))
	}
	if q.CalibrationBudget != 0 {
		if !q.Fusion.Calibrated() {
			return fmt.Errorf("query: CALIBRATE applies only to logistic fusion, not %v", q.Fusion)
		}
		if q.CalibrationBudget < MinCalibration {
			return fmt.Errorf("query: CALIBRATE %d below the minimum of %d labels", q.CalibrationBudget, MinCalibration)
		}
	}
	if q.Probability <= 0 || q.Probability >= 1 {
		return fmt.Errorf("query: WITH PROBABILITY %g outside (0, 1)", q.Probability)
	}
	checkTarget := func(name string, v float64) error {
		if v <= 0 || v > 1 {
			return fmt.Errorf("query: %s %g outside (0, 1]", name, v)
		}
		return nil
	}
	switch q.Type {
	case RecallTargetQuery:
		if err := checkTarget("RECALL TARGET", q.RecallTarget); err != nil {
			return err
		}
		if q.OracleLimit <= 0 {
			return fmt.Errorf("query: RT query requires a positive ORACLE LIMIT")
		}
	case PrecisionTargetQuery:
		if err := checkTarget("PRECISION TARGET", q.PrecisionTarget); err != nil {
			return err
		}
		if q.OracleLimit <= 0 {
			return fmt.Errorf("query: PT query requires a positive ORACLE LIMIT")
		}
	case JointTargetQuery:
		if err := checkTarget("RECALL TARGET", q.RecallTarget); err != nil {
			return err
		}
		if err := checkTarget("PRECISION TARGET", q.PrecisionTarget); err != nil {
			return err
		}
		if q.OracleLimit != 0 {
			return fmt.Errorf("query: joint-target queries do not take an ORACLE LIMIT")
		}
		if q.FreeReuse {
			return fmt.Errorf("query: REUSE FREE modifies ORACLE LIMIT, which joint-target queries do not take")
		}
	}
	return nil
}

// formatPercent renders a fraction as a percentage when the ×100 / ÷100
// round trip is exact for the value, and as the bare fraction (which the
// grammar reads back verbatim for values <= 1) when scaling would drift
// — String must re-parse to the identical query for every parseable
// value, not just pretty ones.
func formatPercent(v float64) string {
	pct := strconv.FormatFloat(v*100, 'g', -1, 64)
	if r, err := strconv.ParseFloat(pct, 64); err == nil && r/100 == v {
		return pct + "%"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quoteIfNeeded renders a comparison literal so it re-lexes to the same
// value: bare when it already lexes as a single identifier or number
// token with identical text, quoted otherwise with a quote kind the
// value does not contain. (A parsed literal can never contain both
// quote kinds — it had to lack its own delimiter — so a representable
// quoting always exists for parser-produced values.)
func quoteIfNeeded(s string) string {
	switch strings.ToLower(s) {
	case "true", "false":
		return s
	}
	if toks, err := lexAll(s); err == nil && len(toks) == 2 &&
		(toks[0].kind == tokIdent || toks[0].kind == tokNumber) && toks[0].text == s {
		return s
	}
	if !strings.Contains(s, `"`) {
		return `"` + s + `"`
	}
	return "'" + s + "'"
}
