package query

import (
	"fmt"

	"supg/internal/core"
)

// Plan is the physical plan for a parsed query: the core algorithm
// specification plus the names the engine must resolve against its
// catalog and UDF registry.
type Plan struct {
	Table      string
	OracleUDF  string
	ProxyUDF   string
	Kind       PlanKind
	Spec       core.Spec      // for RT/PT plans
	JointSpec  core.JointSpec // for JT plans
	Config     core.Config
	SourceText string
	// FreeReuse carries the ORACLE LIMIT ... REUSE FREE modifier: warm
	// label-store hits are free instead of budget-charged.
	FreeReuse bool
}

// PlanKind distinguishes budgeted from joint plans.
type PlanKind int

const (
	// PlanBudgeted executes an RT or PT query under an oracle budget.
	PlanBudgeted PlanKind = iota
	// PlanJoint executes a JT query with unrestricted oracle access.
	PlanJoint
)

// PlanOptions tune planning. The zero value selects the paper defaults
// (SUPG importance sampling).
type PlanOptions struct {
	// Config overrides the algorithm configuration; nil selects
	// core.DefaultSUPG().
	Config *core.Config
	// JointStageBudget sets the optimistic stage-2 budget for JT
	// queries; 0 selects 1000.
	JointStageBudget int
}

// BuildPlan lowers a validated query onto the core algorithms.
func BuildPlan(q *Query, opts PlanOptions) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	cfg := core.DefaultSUPG()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	p := &Plan{
		Table:      q.Table,
		OracleUDF:  q.Oracle.Func,
		ProxyUDF:   q.Proxy.Func,
		Config:     cfg,
		SourceText: q.String(),
		FreeReuse:  q.FreeReuse,
	}
	switch q.Type {
	case RecallTargetQuery:
		p.Kind = PlanBudgeted
		p.Spec = core.Spec{
			Kind:   core.RecallTarget,
			Gamma:  q.RecallTarget,
			Delta:  q.Delta(),
			Budget: q.OracleLimit,
		}
	case PrecisionTargetQuery:
		p.Kind = PlanBudgeted
		p.Spec = core.Spec{
			Kind:   core.PrecisionTarget,
			Gamma:  q.PrecisionTarget,
			Delta:  q.Delta(),
			Budget: q.OracleLimit,
		}
	case JointTargetQuery:
		p.Kind = PlanJoint
		budget := opts.JointStageBudget
		if budget <= 0 {
			budget = 1000
		}
		p.JointSpec = core.JointSpec{
			GammaRecall:    q.RecallTarget,
			GammaPrecision: q.PrecisionTarget,
			Delta:          q.Delta(),
			StageBudget:    budget,
		}
	default:
		return nil, fmt.Errorf("query: unknown query type %v", q.Type)
	}
	return p, nil
}
