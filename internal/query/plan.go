package query

import (
	"fmt"
	"strings"

	"supg/internal/core"
	"supg/internal/multiproxy"
)

// ScoreSource is the physical descriptor of a plan's proxy-score
// column: which proxy UDFs feed it and how they are fused. It is the
// one concept every layer below the parser speaks — the planner emits
// it, the engine keys its index cache on it, and the fused column it
// describes is what the selection algorithms consume. The single-proxy
// form is the degenerate one-member source with FusionNone.
type ScoreSource struct {
	// Proxies are the member proxy UDF names, in query order.
	Proxies []string
	// Fusion is how the members combine (FusionNone = single proxy).
	Fusion FusionKind
	// CalibrationBudget is the oracle-label budget for fitting a
	// calibrated (logistic) fusion. The planner resolves it to a
	// concrete positive value, so equal descriptors mean equal fused
	// columns. Zero for label-free sources.
	CalibrationBudget int
}

// Single reports whether the source is the classic one-proxy form.
func (s ScoreSource) Single() bool { return s.Fusion == FusionNone }

// Primary returns the first member proxy UDF name ("" when empty).
func (s ScoreSource) Primary() string {
	if len(s.Proxies) == 0 {
		return ""
	}
	return s.Proxies[0]
}

// CacheKey returns the canonical identity of the source for index
// caching. A single-proxy source is identified by its proxy name alone
// (byte-compatible with the historical per-proxy cache), a label-free
// fusion by strategy plus member list, and a calibrated fusion
// additionally by its calibration budget and the oracle UDF whose
// labels fit it — two queries share a fused index exactly when every
// input that shapes the fused column is identical.
func (s ScoreSource) CacheKey(oracleUDF string) string {
	if s.Single() {
		return s.Primary()
	}
	key := "fuse:" + s.Fusion.String() + ":" + strings.Join(s.Proxies, ",")
	if s.Fusion.Calibrated() {
		key += fmt.Sprintf(":calib=%d:oracle=%s", s.CalibrationBudget, oracleUDF)
	}
	return key
}

// Plan is the physical plan for a parsed query: the core algorithm
// specification plus the names the engine must resolve against its
// catalog and UDF registry.
type Plan struct {
	Table     string
	OracleUDF string
	// Source describes the proxy-score column the plan selects over —
	// one proxy UDF, or several fused. It replaces the historical bare
	// ProxyUDF string; single-proxy plans carry the degenerate
	// one-member source and are byte-identical to pre-fusion plans.
	Source     ScoreSource
	Kind       PlanKind
	Spec       core.Spec      // for RT/PT plans
	JointSpec  core.JointSpec // for JT plans
	Config     core.Config
	SourceText string
	// FreeReuse carries the ORACLE LIMIT ... REUSE FREE modifier: warm
	// label-store hits are free instead of budget-charged.
	FreeReuse bool
}

// PlanKind distinguishes budgeted from joint plans.
type PlanKind int

const (
	// PlanBudgeted executes an RT or PT query under an oracle budget.
	PlanBudgeted PlanKind = iota
	// PlanJoint executes a JT query with unrestricted oracle access.
	PlanJoint
)

// PlanOptions tune planning. The zero value selects the paper defaults
// (SUPG importance sampling).
type PlanOptions struct {
	// Config overrides the algorithm configuration; nil selects
	// core.DefaultSUPG().
	Config *core.Config
	// JointStageBudget sets the optimistic stage-2 budget for JT
	// queries; 0 selects 1000.
	JointStageBudget int
}

// defaultJointCalibration is the logistic calibration budget for
// joint-target queries, which carry no ORACLE LIMIT to derive one from.
const defaultJointCalibration = 200

// resolveCalibration pins the logistic calibration budget the plan
// will carry. An explicit CALIBRATE wins; otherwise budgeted queries
// use multiproxy.DefaultCalibration of the oracle limit (one formula
// shared with the library path), and joint queries (unbounded oracle)
// use defaultJointCalibration. Calibration spend is charged to index
// construction, not to the query's ORACLE LIMIT — it is amortized
// across every query that shares the fused index (see the engine
// docs).
func resolveCalibration(q *Query) (int, error) {
	if !q.Fusion.Calibrated() {
		return 0, nil
	}
	if q.CalibrationBudget > 0 {
		return q.CalibrationBudget, nil
	}
	if q.Type == JointTargetQuery {
		return defaultJointCalibration, nil
	}
	calib := multiproxy.DefaultCalibration(q.OracleLimit)
	if calib < MinCalibration {
		return 0, fmt.Errorf("query: ORACLE LIMIT %d is too small to calibrate a logistic fusion (needs >= %d); raise the limit or set CALIBRATE explicitly", q.OracleLimit, 2*MinCalibration)
	}
	return calib, nil
}

// BuildPlan lowers a validated query onto the core algorithms.
func BuildPlan(q *Query, opts PlanOptions) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	cfg := core.DefaultSUPG()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	calib, err := resolveCalibration(q)
	if err != nil {
		return nil, err
	}
	src := ScoreSource{
		Proxies:           make([]string, len(q.Proxies)),
		Fusion:            q.Fusion,
		CalibrationBudget: calib,
	}
	for i, p := range q.Proxies {
		src.Proxies[i] = p.Func
	}
	// Normalize the degenerate one-member label-free fusion (the parser
	// already does for parsed queries; programmatic ASTs get the same
	// guarantee here).
	if len(src.Proxies) == 1 && !src.Fusion.Calibrated() {
		src.Fusion = FusionNone
	}
	p := &Plan{
		Table:      q.Table,
		OracleUDF:  q.Oracle.Func,
		Source:     src,
		Config:     cfg,
		SourceText: q.String(),
		FreeReuse:  q.FreeReuse,
	}
	switch q.Type {
	case RecallTargetQuery:
		p.Kind = PlanBudgeted
		p.Spec = core.Spec{
			Kind:   core.RecallTarget,
			Gamma:  q.RecallTarget,
			Delta:  q.Delta(),
			Budget: q.OracleLimit,
		}
	case PrecisionTargetQuery:
		p.Kind = PlanBudgeted
		p.Spec = core.Spec{
			Kind:   core.PrecisionTarget,
			Gamma:  q.PrecisionTarget,
			Delta:  q.Delta(),
			Budget: q.OracleLimit,
		}
	case JointTargetQuery:
		p.Kind = PlanJoint
		budget := opts.JointStageBudget
		if budget <= 0 {
			budget = 1000
		}
		p.JointSpec = core.JointSpec{
			GammaRecall:    q.RecallTarget,
			GammaPrecision: q.PrecisionTarget,
			Delta:          q.Delta(),
			StageBudget:    budget,
		}
	default:
		return nil, fmt.Errorf("query: unknown query type %v", q.Type)
	}
	return p, nil
}
