// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B target per artifact. They run the same code
// as cmd/supg-bench at a reduced scale so `go test -bench=.` finishes in
// minutes; run the CLI with -scale 1.0 -trials 100 for paper-scale
// numbers. Each benchmark reports the experiment's wall time per
// regeneration; the printed report of one representative run lands in
// bench_output.txt via the harness.
package supg_test

import (
	"testing"

	"supg/internal/experiments"
)

// benchOpts is the reduced-scale configuration shared by all benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 0x5069, Trials: 10, Scale: 0.02, Parallelism: 0}
}

func benchmarkExperiment(b *testing.B, id string) {
	exp, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(opts)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Table.Rows) == 0 {
			b.Fatalf("%s produced an empty report", id)
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (naive vs SUPG precision boxes on
// ImageNet).
func BenchmarkFig1(b *testing.B) { benchmarkExperiment(b, "fig1") }

// BenchmarkTable2 regenerates Table 2 (dataset inventory).
func BenchmarkTable2(b *testing.B) { benchmarkExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (drifted dataset inventory).
func BenchmarkTable3(b *testing.B) { benchmarkExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table 4 (accuracy under model drift).
func BenchmarkTable4(b *testing.B) { benchmarkExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table 5 (cost breakdown).
func BenchmarkTable5(b *testing.B) { benchmarkExperiment(b, "table5") }

// BenchmarkFig5 regenerates Figure 5 (precision-target failure boxes,
// all six datasets).
func BenchmarkFig5(b *testing.B) { benchmarkExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (recall-target failure boxes).
func BenchmarkFig6(b *testing.B) { benchmarkExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (precision-target sweep: U-CI vs
// one-stage vs two-stage importance sampling).
func BenchmarkFig7(b *testing.B) { benchmarkExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (recall-target sweep: U-CI vs
// proportional vs sqrt weights).
func BenchmarkFig8(b *testing.B) { benchmarkExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (proxy-noise sensitivity).
func BenchmarkFig9(b *testing.B) { benchmarkExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (class-imbalance sensitivity).
func BenchmarkFig10(b *testing.B) { benchmarkExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (parameter sensitivity: stride m
// and defensive mixing).
func BenchmarkFig11(b *testing.B) { benchmarkExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (importance-weight exponent).
func BenchmarkFig12(b *testing.B) { benchmarkExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13 (confidence-interval methods).
func BenchmarkFig13(b *testing.B) { benchmarkExperiment(b, "fig13") }

// BenchmarkFig15 regenerates Figure 15 (joint-target oracle usage).
func BenchmarkFig15(b *testing.B) { benchmarkExperiment(b, "fig15") }
