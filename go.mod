module supg

go 1.22
