// Hummingbird: the paper's Section 2.1 biological-discovery scenario.
//
// Biologists have months of flower-field video and need every frame
// where a hummingbird feeds (rare: <0.1% of frames), with a guarantee
// that at least 90% of the feeding events are found — missing events
// would bias the downstream micro-ecology analysis. A DNN detector
// provides cheap proxy confidences; the biologists themselves are the
// oracle, and they can only label a fixed number of frames.
//
// This example simulates the video with the ImageNet-style rare-event
// profile, issues the paper's example RT query through the SQL
// interface, and reports what the biologists would get.
package main

import (
	"fmt"
	"log"

	"supg"
	"supg/internal/dataset"
	"supg/internal/randx"
)

func main() {
	// ~9 months of video at 60fps is 1.4B frames; we simulate a day's
	// shard. Hummingbird visits are <0.1% of frames, and the DNN proxy
	// separates them well (the regime SUPG is optimized for).
	video := dataset.MixtureProfile{
		Name: "hummingbird_video", N: 500_000, TPR: 0.0008,
		PosAlpha: 6, PosBeta: 1.2,
		NegAlpha: 0.03, NegBeta: 6,
		HardPos: 0.04, HardNeg: 0.0006,
	}.Generate(randx.New(2020))
	fmt.Printf("video shard: %d frames, %d hummingbird frames (%.3f%%)\n",
		video.Len(), video.PositiveCount(), 100*video.PositiveRate())

	eng := supg.NewEngine(7)
	eng.RegisterDatasetDefaults("hummingbird_video", video)

	// The paper's Section 3.1 example query, verbatim syntax.
	res, err := eng.Execute(`
		SELECT * FROM hummingbird_video
		WHERE hummingbird_video_oracle(frame) = true
		ORACLE LIMIT 10000
		USING hummingbird_video_proxy(frame)
		RECALL TARGET 95%
		WITH PROBABILITY 95%`)
	if err != nil {
		log.Fatal(err)
	}

	eval := supg.Evaluate(video, res.Indices)
	fmt.Printf("\nframes for review:  %d (%.2f%% of video)\n",
		len(res.Indices), 100*float64(len(res.Indices))/float64(video.Len()))
	fmt.Printf("oracle labels used: %d\n", res.OracleCalls)
	fmt.Printf("achieved recall:    %.2f%% (target 95%%)\n", 100*eval.Recall)
	fmt.Printf("achieved precision: %.2f%% (motion detectors gave ~2%%)\n", 100*eval.Precision)
	fmt.Printf("query time:         %v\n", res.Elapsed)

	fmt.Println("\nThe biologists label 10k frames instead of watching 500k, keep >=95%")
	fmt.Println("of feeding events with high probability, and the returned set is far")
	fmt.Println("more precise than their motion-detector pipeline.")
}
