// Multiproxy: answer one SUPG query with several proxy models — the
// paper's Section 8 extension — through the SQL engine's FUSE clause.
//
// Two deliberately mediocre proxies observe complementary halves of the
// signal (labels are Bernoulli(a*b), each proxy sees only a or only b).
// A logistic fusion calibrated on a small oracle-labeled sample
// combines them into one score column, which the engine indexes once
// and caches for every later query of the same score source; the
// calibration labels flow through the cross-query label store, so even
// a forced rebuild never re-buys them.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"supg"
)

func main() {
	// Synthetic complementary-proxy data: two independent uniform
	// signals; a record is positive with probability a*b, so neither
	// signal alone ranks positives well.
	const n = 100_000
	r := rand.New(rand.NewPCG(7, 11))
	a := make([]float64, n)
	b := make([]float64, n)
	labels := make([]bool, n)
	positives := 0
	for i := range a {
		a[i], b[i] = r.Float64(), r.Float64()
		labels[i] = r.Float64() < a[i]*b[i]
		if labels[i] {
			positives++
		}
	}
	ds, err := supg.NewDataset("readings", a, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d records, %d positives (%.1f%%)\n", n, positives, 100*float64(positives)/n)

	eng := supg.NewEngine(42)
	eng.RegisterTable("readings", ds)
	eng.RegisterOracle("truth", func(i int) (bool, error) { return labels[i], nil })
	eng.RegisterProxy("sensor_a", func(i int) float64 { return a[i] })
	eng.RegisterProxy("sensor_b", func(i int) float64 { return b[i] })

	run := func(name, using string) *supg.QueryResult {
		res, err := eng.Execute(`
			SELECT * FROM readings
			WHERE truth(x) = true
			ORACLE LIMIT 2000
			USING ` + using + `
			RECALL TARGET 90%
			WITH PROBABILITY 95%`)
		if err != nil {
			log.Fatal(err)
		}
		eval := supg.Evaluate(ds, res.Indices)
		fmt.Printf("%-22s returned %6d | recall %.1f%% | precision %.1f%% | oracle %d | calibration %d\n",
			name, len(res.Indices), 100*eval.Recall, 100*eval.Precision, res.OracleCalls, res.CalibrationCalls)
		return res
	}

	// Each single proxy must cast a very wide net to hit 90% recall.
	run("single sensor_a:", "sensor_a(x)")
	run("single sensor_b:", "sensor_b(x)")

	// The fused source ranks by both signals at once. The first query
	// scans both proxies, calibrates the stacker on 200 oracle labels,
	// and caches the fused index.
	run("fused logistic:", "FUSE(logistic, sensor_a(x), sensor_b(x)) CALIBRATE 200")

	// A repeat is pure cache: no proxy calls, no calibration, identical
	// answer.
	again := run("fused (warm):", "FUSE(logistic, sensor_a(x), sensor_b(x)) CALIBRATE 200")
	if again.IndexBuilt || again.ProxyCalls != 0 {
		log.Fatal("warm fused query unexpectedly rebuilt the index")
	}

	// Label-free fusions need no calibration at all and extend
	// incrementally on table appends.
	run("fused mean:", "FUSE(mean, sensor_a(x), sensor_b(x))")
}
