// Legal-discovery: the paper's Section 2.3 document-review scenario.
//
// Lawyers must find documents referencing a sensitive legal concept in
// a large corpus. Contract-lawyer review is the oracle and is priced
// per document; a fine-tuned language model provides proxy scores.
// Here the firm wants a precision guarantee: every batch sent to
// (expensive) senior review should be at least 90% relevant, while
// recovering as many relevant documents as possible.
package main

import (
	"fmt"
	"log"

	"supg"
	"supg/internal/dataset"
	"supg/internal/randx"
)

func main() {
	// Simulated corpus modeled after the TACRED-style strong-proxy
	// profile: 150k documents, ~2.5% match the concept.
	corpus := dataset.MixtureProfile{
		Name: "discovery_corpus", N: 150_000, TPR: 0.025,
		PosAlpha: 4, PosBeta: 1.2,
		NegAlpha: 0.08, NegBeta: 5,
		HardPos: 0.06, HardNeg: 0.004,
	}.Generate(randx.New(99))
	fmt.Printf("corpus: %d documents, %d relevant (%.2f%%)\n",
		corpus.Len(), corpus.PositiveCount(), 100*corpus.PositiveRate())

	eng := supg.NewEngine(11)
	eng.RegisterDatasetDefaults("discovery_corpus", corpus)

	res, err := eng.Execute(`
		SELECT * FROM discovery_corpus
		WHERE discovery_corpus_oracle(doc) = true
		ORACLE LIMIT 2000
		USING discovery_corpus_proxy(doc)
		PRECISION TARGET 90%
		WITH PROBABILITY 95%`)
	if err != nil {
		log.Fatal(err)
	}

	eval := supg.Evaluate(corpus, res.Indices)
	perDoc := 0.08 // contract-review price per document (Scale API rate)
	fmt.Printf("\ndocuments returned:  %d\n", len(res.Indices))
	fmt.Printf("review labels spent: %d (~$%.0f)\n", res.OracleCalls, float64(res.OracleCalls)*perDoc)
	fmt.Printf("achieved precision:  %.2f%% (target 90%%)\n", 100*eval.Precision)
	fmt.Printf("achieved recall:     %.2f%% of all relevant documents\n", 100*eval.Recall)
	fmt.Printf("exhaustive review:   would cost ~$%.0f\n", float64(corpus.Len())*perDoc)

	// If the matter later requires BOTH guarantees (e.g., a court
	// deadline with completeness requirements), the joint query trades
	// unbounded review for certainty:
	joint, err := supg.RunJoint(corpus.Scores(), supg.SimulatedOracle(corpus), supg.JointQuery{
		RecallTarget:    0.90,
		PrecisionTarget: 0.90,
		Probability:     0.95,
		StageBudget:     2000,
	}, supg.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	jEval := supg.Evaluate(corpus, joint.Indices)
	fmt.Printf("\njoint query: %d verified documents, recall %.1f%%, precision %.1f%%, %d total reviews\n",
		len(joint.Indices), 100*jEval.Recall, 100*jEval.Precision, joint.OracleCalls)
}
