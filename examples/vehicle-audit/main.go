// Vehicle-audit: the paper's Section 2.2 autonomous-vehicle scenario.
//
// A labeling service annotated pedestrians in fleet data, but such
// services are noisy and sometimes miss pedestrians entirely. Missed
// labels become missed pedestrians at deployment time, so an analyst
// must find every frame where a pedestrian is visible but unannotated.
// The proxy is an object detector with annotated boxes removed; the
// oracle is careful human re-inspection. Recall is mission-critical,
// so the audit issues a recall-target query.
package main

import (
	"fmt"
	"log"

	"supg"
	"supg/internal/dataset"
	"supg/internal/randx"
)

func main() {
	// Simulated audit shard: 300k frames; ~1.5% contain a pedestrian
	// the labeling service missed. The detector proxy is strong with a
	// small hard tail (occlusions, night scenes) — the profile's HardPos.
	frames := dataset.MixtureProfile{
		Name: "fleet_frames", N: 300_000, TPR: 0.015,
		PosAlpha: 3.5, PosBeta: 1.2,
		NegAlpha: 0.06, NegBeta: 5,
		HardPos: 0.004, HardNeg: 0.004,
	}.Generate(randx.New(17))
	fmt.Printf("audit shard: %d frames, %d with missed pedestrians (%.2f%%)\n",
		frames.Len(), frames.PositiveCount(), 100*frames.PositiveRate())

	orc := supg.SimulatedOracle(frames)
	res, err := supg.Run(frames.Scores(), orc, supg.Query{
		Kind:        supg.RecallQuery,
		Target:      0.99, // missing pedestrians is a safety issue
		Probability: 0.95,
		OracleLimit: 20_000,
	}, supg.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	eval := supg.Evaluate(frames, res.Indices)
	fmt.Printf("\nframes flagged for relabeling: %d (%.1f%% of shard)\n",
		len(res.Indices), 100*float64(len(res.Indices))/float64(frames.Len()))
	fmt.Printf("human inspections spent:       %d\n", res.OracleCalls)
	fmt.Printf("achieved recall:               %.2f%% (target 99%%)\n", 100*eval.Recall)
	fmt.Printf("achieved precision:            %.1f%%\n", 100*eval.Precision)

	missed := frames.PositiveCount() - eval.TruePos
	fmt.Printf("missed pedestrian frames:      %d of %d\n", missed, frames.PositiveCount())

	// Contrast with uniform sampling under the same guarantee: same
	// validity, but it must return a much larger set to be safe.
	uni, err := supg.Run(frames.Scores(), supg.SimulatedOracle(frames), supg.Query{
		Kind: supg.RecallQuery, Target: 0.99, Probability: 0.95, OracleLimit: 20_000,
	}, supg.WithSeed(3), supg.WithMethod(supg.MethodUniform))
	if err != nil {
		log.Fatal(err)
	}
	uEval := supg.Evaluate(frames, uni.Indices)
	fmt.Printf("\nuniform baseline: %d frames flagged (precision %.1f%%) for the same guarantee\n",
		len(uni.Indices), 100*uEval.Precision)
}
