// Quickstart: run a recall-target SUPG query on a synthetic dataset and
// compare the SUPG algorithm with the no-guarantee baseline of prior
// systems.
package main

import (
	"fmt"
	"log"

	"supg"
)

func main() {
	// A synthetic dataset with a calibrated proxy: scores follow
	// Beta(0.01, 2) and each record is positive with probability equal
	// to its score (~0.5% positives, as in the paper's benchmark).
	ds := supg.GenerateBeta(42, 200_000, 0.01, 2)
	fmt.Printf("dataset: %d records, %d positives (%.2f%%)\n",
		ds.Len(), ds.PositiveCount(), 100*ds.PositiveRate())

	// The oracle stands in for a human labeler: it reveals the ground
	// truth but every call counts against the query budget.
	orc := supg.SimulatedOracle(ds)

	query := supg.Query{
		Kind:        supg.RecallQuery,
		Target:      0.90,  // find at least 90% of positives...
		Probability: 0.95,  // ...with >= 95% probability...
		OracleLimit: 5_000, // ...using at most 5,000 oracle labels.
	}

	res, err := supg.Run(ds.Scores(), orc, query, supg.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	eval := supg.Evaluate(ds, res.Indices)
	fmt.Printf("\nSUPG:   returned %6d records | recall %.1f%% | precision %.1f%% | oracle calls %d\n",
		len(res.Indices), 100*eval.Recall, 100*eval.Precision, res.OracleCalls)

	// The same query with the prior-work empirical cutoff (no
	// guarantee): it often misses the recall target.
	naive, err := supg.Run(ds.Scores(), supg.SimulatedOracle(ds), query,
		supg.WithSeed(7), supg.WithMethod(supg.MethodNoGuarantee))
	if err != nil {
		log.Fatal(err)
	}
	nEval := supg.Evaluate(ds, naive.Indices)
	fmt.Printf("Naive:  returned %6d records | recall %.1f%% | precision %.1f%% | oracle calls %d\n",
		len(naive.Indices), 100*nEval.Recall, 100*nEval.Precision, naive.OracleCalls)

	if eval.Recall >= query.Target {
		fmt.Println("\nSUPG met the recall target.")
	} else {
		fmt.Println("\nSUPG missed the target (expected for at most 5% of seeds).")
	}
}
