// Driftwatch: the paper's Section 6.2 model-drift hazard, end to end.
//
// Systems that fix a proxy threshold on historical labeled data break
// silently when the data distribution shifts (new weather, new day,
// new sensor). This example fits the prior-work empirical cutoff on a
// clean "training day", applies it to a foggy "test day", and shows the
// recall guarantee collapsing — then runs SUPG on the shifted data,
// which re-estimates the threshold from a small fresh sample and keeps
// the guarantee.
package main

import (
	"fmt"
	"log"

	"supg"
	"supg/internal/dataset"
	"supg/internal/randx"
)

func main() {
	r := randx.New(31)
	train := dataset.MixtureProfile{
		Name: "camera_day1", N: 200_000, TPR: 0.002,
		PosAlpha: 6, PosBeta: 1.2,
		NegAlpha: 0.03, NegBeta: 6,
		HardPos: 0.04, HardNeg: 0.0006,
	}.Generate(r)
	test := dataset.ApplyFogDrift(r.Stream(1), train, 0.5)
	fmt.Printf("train: %s (%d records)\ntest:  %s (fog-shifted scores)\n\n",
		train.Name(), train.Len(), test.Name())

	const target = 0.95

	// Prior-work approach: empirical threshold from fully-labeled
	// training data, reused on the shifted day with no new labels.
	naiveRes, err := supg.Run(train.Scores(), supg.SimulatedOracle(train), supg.Query{
		Kind: supg.RecallQuery, Target: target, Probability: 0.95,
		OracleLimit: train.Len(),
	}, supg.WithSeed(1), supg.WithMethod(supg.MethodNoGuarantee))
	if err != nil {
		log.Fatal(err)
	}
	tau := naiveRes.Tau
	var fixed []int
	for i := 0; i < test.Len(); i++ {
		if test.Score(i) >= tau {
			fixed = append(fixed, i)
		}
	}
	naiveEval := supg.Evaluate(test, fixed)
	fmt.Printf("fixed threshold %.4f on shifted data: recall %.1f%% (target %.0f%%) — guarantee broken\n",
		tau, 100*naiveEval.Recall, 100*target)

	// SUPG on the shifted day: a fresh 10k-label sample restores the
	// guarantee without relabeling the archive.
	supgRes, err := supg.Run(test.Scores(), supg.SimulatedOracle(test), supg.Query{
		Kind: supg.RecallQuery, Target: target, Probability: 0.95,
		OracleLimit: 10_000,
	}, supg.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	supgEval := supg.Evaluate(test, supgRes.Indices)
	fmt.Printf("SUPG re-estimated on shifted data:    recall %.1f%% with %d fresh labels — guarantee holds\n",
		100*supgEval.Recall, supgRes.OracleCalls)
}
