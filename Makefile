GO ?= go

.PHONY: all build test test-race vet fmt-check bench

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test ./internal/engine -bench SelectHotPath -benchmem -run '^$$'
	$(GO) test . -bench . -run '^$$'
