GO ?= go

.PHONY: all build test vet fmt-check bench

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test ./internal/engine -bench SelectHotPath -benchmem -run '^$$'
	$(GO) test . -bench . -run '^$$'
