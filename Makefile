GO ?= go

# Pre-PR total-coverage baseline; cover-check fails when the suite
# drops below it. Raise it when coverage durably improves.
COVER_FLOOR ?= 79.1

# Reduced benchmark scale for the CI bench smoke (SUPG_BENCH_N): big
# enough to be multi-segment-capable and alloc-stable, small enough to
# finish in seconds.
SMOKE_N ?= 65536

# The hot-path trajectory battery (see bench-json / bench-check).
BENCH_HOTPATH_ENGINE = SelectHotPath$$|SelectHotPathQuantized$$|SelectMixtureWarm
BENCH_HOTPATH_INDEX = PermScan|AscendMerge|ParallelCount|IndexBuildQuantized|IndexAppend

.PHONY: all build test test-race vet lint lint-fix fmt-check bench bench-json bench-check bench-labelstore bench-multiproxy bench-storage cover cover-check fuzz-smoke chaos-smoke profile

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus supglint, the repository's custom
# analyzer suite (internal/lint) that enforces the determinism,
# error-taxonomy, storage-commit, and benchmark-hygiene invariants.
# Fails on any finding and on stale //supg:*-ok annotations alike.
lint: vet
	$(GO) run ./cmd/supglint ./...

# Like lint, but prints the suggested fix under every finding.
# Advisory: always exits 0, so it can be run mid-cleanup.
lint-fix:
	-$(GO) run ./cmd/supglint -suggest ./...

# Fails when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Writes cover.out and prints the total statement coverage.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1

# Fails when total coverage drops below the pre-PR baseline.
cover-check: cover
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { gsub("%","",$$NF); print $$NF }'); \
	echo "total coverage $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the $(COVER_FLOOR)% baseline"; exit 1; }

# Short native-fuzzing runs of the dataset parsers, the query parser,
# and the durable-storage on-disk parsers (CI smoke; use go test -fuzz
# directly for long local sessions). FuzzParse checks parse -> String
# -> re-parse equality, so the SQL grammar (REUSE FREE, FUSE,
# CALIBRATE) stays round-trip clean. The storage targets feed the
# manifest replayer and the column/segment/dataset file parsers
# arbitrary bytes: any input must yield a clean error or a view that
# agrees with its declared counts — never a panic, never an
# out-of-bounds replay. FuzzQuantizedEquivalence throws boundary-heavy
# columns and thresholds at the 16-bit quantized index and requires
# bit-identical results against the float index (committed seed corpus
# in internal/index/testdata).
fuzz-smoke:
	$(GO) test ./internal/dataset -run '^$$' -fuzz '^FuzzLoadCSV$$' -fuzztime 10s
	$(GO) test ./internal/dataset -run '^$$' -fuzz '^FuzzLoadBinary$$' -fuzztime 10s
	$(GO) test ./internal/query -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s
	$(GO) test ./internal/storage -run '^$$' -fuzz '^FuzzManifestReplay$$' -fuzztime 10s
	$(GO) test ./internal/storage -run '^$$' -fuzz '^FuzzColumnFile$$' -fuzztime 10s
	$(GO) test ./internal/storage -run '^$$' -fuzz '^FuzzSegmentFile$$' -fuzztime 10s
	$(GO) test ./internal/storage -run '^$$' -fuzz '^FuzzDatasetFile$$' -fuzztime 10s
	$(GO) test ./internal/index -run '^$$' -fuzz '^FuzzQuantizedEquivalence$$' -fuzztime 10s

# Fault-injection battery + crash durability: chaos equivalence
# (byte-identical Indices/Tau/oracle_calls under 30% injected
# transient oracle failures), retry/backoff/breaker determinism, WAL
# torn-tail/tombstone/compaction replay, and the kill-and-restart
# recovery tests (a restarted server re-buys zero labels).
chaos-smoke:
	$(GO) test ./internal/oracle -run 'Chaos|Breaker|Resilient' -count=1
	$(GO) test ./internal/labelstore -run 'WAL' -count=1
	$(GO) test ./internal/storage -run 'Torn|Corrupt|Crash|Orphan' -count=1
	$(GO) test ./internal/engine -run 'Chaos|KillRestart|RestartThenReRegistration|BreakerFailFast|Restart' -count=1
	$(GO) test ./internal/server -run 'KillRestartWALRecovery|OracleUnavailable|JobFailureCarriesDiagnostic|Persist' -count=1

bench:
	$(GO) test ./internal/engine -bench SelectHotPath -benchmem -run '^$$'
	$(GO) test ./internal/index -bench 'IndexBuild|IndexAppend' -benchmem -run '^$$'
	$(GO) test . -bench . -run '^$$'

# Records the hot-path benchmark battery — steady-state select (float
# and quantized), the mixture-warm spread-column select, the quantized
# permutation scan vs the float scan, the loser-tree vs heap merge,
# the parallel count reduction, quantized index build, and incremental
# append — into
# BENCH_hotpath.json, committed per PR: a "full" section at paper
# scale (n=1e6) for the human-readable trajectory and a "smoke"
# section at SMOKE_N that bench-check diffs in CI. ns/op is recorded
# but never gated (noisy on shared VMs); allocs/op and bytes/op are.
bench-json:
	{ $(GO) test ./internal/engine -bench '$(BENCH_HOTPATH_ENGINE)' -benchmem -run '^$$' && \
	  $(GO) test ./internal/index -bench '$(BENCH_HOTPATH_INDEX)' -benchmem -run '^$$'; } | \
	  $(GO) run ./cmd/bench-gate emit -out BENCH_hotpath.json -section full -n 1000000 \
	    -note "Hot-path trajectory: steady-state SUPG select (float vs 16-bit quantized index, byte-identical results), mixture-warm select on a spread column (quantized <= float with scan-bytes/rec 2 vs 8), dense permutation scan traffic, loser-tree vs heap k-way merge, parallel count reduction, quantized build, and incremental append. ns/op recorded but not gated (noisy on shared VMs); CI gates allocs/op and bytes/op against the smoke section."
	{ SUPG_BENCH_N=$(SMOKE_N) $(GO) test ./internal/engine -bench '$(BENCH_HOTPATH_ENGINE)' -benchmem -run '^$$' && \
	  SUPG_BENCH_N=$(SMOKE_N) $(GO) test ./internal/index -bench '$(BENCH_HOTPATH_INDEX)' -benchmem -run '^$$'; } | \
	  $(GO) run ./cmd/bench-gate emit -out BENCH_hotpath.json -section smoke -n $(SMOKE_N)

# CI trajectory gate: re-run the smoke-scale battery and fail when
# allocs/op or bytes/op regress beyond tolerance against the committed
# BENCH_hotpath.json smoke section (or when a baselined benchmark
# disappears). ns/op deltas are printed, never enforced.
bench-check:
	{ SUPG_BENCH_N=$(SMOKE_N) $(GO) test ./internal/engine -bench '$(BENCH_HOTPATH_ENGINE)' -benchmem -run '^$$' && \
	  SUPG_BENCH_N=$(SMOKE_N) $(GO) test ./internal/index -bench '$(BENCH_HOTPATH_INDEX)' -benchmem -run '^$$'; } | \
	  $(GO) run ./cmd/bench-gate check -baseline BENCH_hotpath.json -section smoke

# Cross-query label store: cold vs warm oracle-call counts. The warm
# benchmark reports warm-oracle-calls/op = 0 — a repeated identical
# query never touches the oracle UDF again; the disabled baseline
# re-pays the full budget every run.
bench-labelstore:
	$(GO) test ./internal/engine -bench LabelStore -benchmem -run '^$$'

# Multi-proxy fusion: fused (logistic) vs best-single-proxy selection
# on a warm index, plus the warm-recalibration path. Both warm metrics
# report 0 oracle UDF calls per op — the fused index is cached, and a
# forced recalibration draws every label from the cross-query store.
bench-multiproxy:
	$(GO) test ./internal/engine -bench MultiProxy -benchmem -run '^$$'

# Durable storage: cold boot with recovery (manifest replay + CRC
# verify + mmap adoption, zero proxy calls, zero sorts) vs the only
# alternative — a full proxy re-scan and segmented re-sort — at
# n=1e6. Committed snapshot: BENCH_storage.json.
bench-storage:
	$(GO) test ./internal/storage -bench StorageBoot -benchmem -run '^$$'

# Profile scale (records); the default matches the CI bench smoke.
PROFILE_N ?= $(SMOKE_N)

# Writes cpu/mem pprof profiles of the hot-path benchmark batteries
# into profiles/, plus `go tool pprof -top` text summaries. CI uploads
# the directory as an artifact; inspect interactively with
# `go tool pprof -http=: profiles/engine_cpu.pprof`.
profile:
	mkdir -p profiles
	SUPG_BENCH_N=$(PROFILE_N) $(GO) test ./internal/engine -bench '$(BENCH_HOTPATH_ENGINE)' -run '^$$' \
		-cpuprofile profiles/engine_cpu.pprof -memprofile profiles/engine_mem.pprof -o profiles/engine.test
	SUPG_BENCH_N=$(PROFILE_N) $(GO) test ./internal/index -bench '$(BENCH_HOTPATH_INDEX)' -run '^$$' \
		-cpuprofile profiles/index_cpu.pprof -memprofile profiles/index_mem.pprof -o profiles/index.test
	$(GO) tool pprof -top -nodecount=20 profiles/engine.test profiles/engine_cpu.pprof > profiles/engine_cpu.txt
	$(GO) tool pprof -top -nodecount=20 -sample_index=alloc_space profiles/engine.test profiles/engine_mem.pprof > profiles/engine_mem.txt
	$(GO) tool pprof -top -nodecount=20 profiles/index.test profiles/index_cpu.pprof > profiles/index_cpu.txt
	$(GO) tool pprof -top -nodecount=20 -sample_index=alloc_space profiles/index.test profiles/index_mem.pprof > profiles/index_mem.txt
	@echo "wrote profiles/: engine_{cpu,mem}.pprof, index_{cpu,mem}.pprof and -top summaries"
