// Command supglint runs the repository's custom static analyzers
// (internal/lint) over the module: determinism of the result path, the
// oracle error taxonomy, the storage commit discipline, and benchmark
// hygiene. It exits non-zero if any diagnostic survives annotation
// suppression, so `make lint` and CI fail on fresh violations and on
// stale //supg:*-ok annotations alike.
//
// Usage:
//
//	supglint [-analyzers determinism,errtaxonomy,...] [-suggest] [./...]
//	supglint -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"supg/internal/lint"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the registered analyzers and exit")
		names   = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		suggest = flag.Bool("suggest", false, "print a suggested fix under each diagnostic")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s //supg:%s-ok  %s\n", a.Name, a.Annotation, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByNames(*names)
	if err != nil {
		fatal(err)
	}

	// The sweep is module-wide: a package pattern argument only picks
	// the module to lint (./... from inside it, or a subdirectory).
	dir := "."
	if flag.NArg() > 0 {
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		if dir = strings.TrimSuffix(dir, "/"); dir == "" {
			dir = "."
		}
	}
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fatal(err)
	}
	m, err := lint.Load(root)
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(m, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d.String())
		if *suggest && d.Suggestion != "" {
			fmt.Printf("\tfix: %s\n", d.Suggestion)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "supglint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "supglint:", err)
	os.Exit(2)
}
