// Command bench-gate maintains BENCH_hotpath.json, the committed
// benchmark trajectory, and enforces it in CI.
//
// Two modes, both reading `go test -bench -benchmem` output on stdin:
//
//	bench-gate emit -out BENCH_hotpath.json -section full -n 1000000
//	    parse the stream and write it as one section of the JSON file,
//	    preserving the file's other sections (so `make bench-json` can
//	    record the full-scale and smoke-scale runs in two passes).
//
//	bench-gate check -baseline BENCH_hotpath.json -section smoke
//	    parse the stream and compare it against the named committed
//	    section: exit non-zero when allocs/op or bytes/op regress
//	    beyond tolerance, or when a baselined benchmark is missing.
//	    ns/op deltas are printed but never fail — wall time on shared
//	    CI VMs is noise.
//
// See internal/benchtool for the parser and comparison rules.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"supg/internal/benchtool"
)

// trajectory is the BENCH_hotpath.json schema: environment metadata
// plus one result section per scale.
type trajectory struct {
	Benchmark string    `json:"benchmark"`
	Date      string    `json:"date"`
	Goos      string    `json:"goos"`
	Goarch    string    `json:"goarch"`
	CPU       string    `json:"cpu"`
	Note      string    `json:"note"`
	Sections  []section `json:"sections"`
}

type section struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	Results []benchtool.Result `json:"results"`
}

func main() {
	if len(os.Args) < 2 {
		fatal("usage: bench-gate emit|check [flags] < bench-output")
	}
	mode, args := os.Args[1], os.Args[2:]
	switch mode {
	case "emit":
		emit(args)
	case "check":
		check(args)
	default:
		fatal("bench-gate: unknown mode %q (want emit or check)", mode)
	}
}

func fatal(format string, a ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", a...)
	os.Exit(1)
}

func emit(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	out := fs.String("out", "BENCH_hotpath.json", "trajectory file to update")
	sec := fs.String("section", "full", "section name to (re)write")
	n := fs.Int("n", 0, "benchmark scale recorded for the section")
	note := fs.String("note", "", "note recorded at the top level (kept from the existing file when empty)")
	fs.Parse(args)

	run, err := benchtool.Parse(os.Stdin)
	if err != nil {
		fatal("bench-gate: %v", err)
	}
	if len(run.Results) == 0 {
		fatal("bench-gate: no benchmark results on stdin")
	}

	tr := trajectory{Benchmark: "hot-path trajectory"}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &tr); err != nil {
			fatal("bench-gate: existing %s is not valid JSON: %v", *out, err)
		}
	}
	tr.Date = time.Now().UTC().Format("2006-01-02")
	tr.Goos, tr.Goarch, tr.CPU = run.Goos, run.Goarch, run.CPU
	if *note != "" {
		tr.Note = *note
	}
	replaced := false
	for i := range tr.Sections {
		if tr.Sections[i].Name == *sec {
			tr.Sections[i] = section{Name: *sec, N: *n, Results: run.Results}
			replaced = true
			break
		}
	}
	if !replaced {
		tr.Sections = append(tr.Sections, section{Name: *sec, N: *n, Results: run.Results})
	}

	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		fatal("bench-gate: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal("bench-gate: %v", err)
	}
	fmt.Printf("bench-gate: wrote section %q (%d results) to %s\n", *sec, len(run.Results), *out)
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_hotpath.json", "committed trajectory file")
	sec := fs.String("section", "smoke", "section to compare against")
	allocRel := fs.Float64("alloc-rel", benchtool.DefaultAllocTolerance.Rel, "relative allocs/op tolerance")
	allocAbs := fs.Float64("alloc-abs", benchtool.DefaultAllocTolerance.Abs, "absolute allocs/op slack")
	bytesRel := fs.Float64("bytes-rel", benchtool.DefaultBytesTolerance.Rel, "relative bytes/op tolerance")
	bytesAbs := fs.Float64("bytes-abs", benchtool.DefaultBytesTolerance.Abs, "absolute bytes/op slack")
	fs.Parse(args)

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fatal("bench-gate: %v", err)
	}
	var tr trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		fatal("bench-gate: parse %s: %v", *baseline, err)
	}
	var base *section
	for i := range tr.Sections {
		if tr.Sections[i].Name == *sec {
			base = &tr.Sections[i]
			break
		}
	}
	if base == nil || len(base.Results) == 0 {
		fatal("bench-gate: %s has no %q section to gate against", *baseline, *sec)
	}

	run, err := benchtool.Parse(os.Stdin)
	if err != nil {
		fatal("bench-gate: %v", err)
	}
	summary, failures := benchtool.Compare(base.Results, run,
		benchtool.Tolerance{Rel: *allocRel, Abs: *allocAbs},
		benchtool.Tolerance{Rel: *bytesRel, Abs: *bytesAbs})
	for _, line := range summary {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL: "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("bench-gate: %d benchmarks within tolerance of %s section %q\n", len(base.Results), *baseline, *sec)
}
