// Command supg-datagen generates the paper's synthetic and simulated
// datasets in the CSV interchange format consumed by cmd/supg.
//
// Usage:
//
//	supg-datagen -kind beta -n 1000000 -alpha 0.01 -beta 2 -out beta.csv
//	supg-datagen -kind imagenet -out imagenet.csv
//	supg-datagen -kind nightstreet -n 100000 -out night.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"supg/internal/dataset"
	"supg/internal/randx"
)

func main() {
	var (
		kind   = flag.String("kind", "beta", "dataset kind: beta|imagenet|nightstreet|ontonotes|tacred")
		n      = flag.Int("n", 1_000_000, "record count (beta and nightstreet kinds)")
		alpha  = flag.Float64("alpha", 0.01, "Beta distribution alpha (beta kind)")
		beta   = flag.Float64("beta", 2, "Beta distribution beta (beta kind)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output path (default stdout)")
		format = flag.String("format", "csv", "output format: csv|bin")
	)
	flag.Parse()

	r := randx.New(*seed)
	var d *dataset.Dataset
	switch *kind {
	case "beta":
		d = dataset.Beta(r, *n, *alpha, *beta)
	case "imagenet":
		d = dataset.ImageNetSim(r)
	case "nightstreet":
		d = dataset.NightStreetSimN(r, *n)
	case "ontonotes":
		d = dataset.OntoNotesSim(r)
	case "tacred":
		d = dataset.TACREDSim(r)
	default:
		fatalf("unknown kind %q", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		if err := dataset.WriteCSV(w, d); err != nil {
			fatalf("writing CSV: %v", err)
		}
	case "bin":
		if err := dataset.WriteBinary(w, d); err != nil {
			fatalf("writing binary: %v", err)
		}
	default:
		fatalf("unknown format %q (want csv or bin)", *format)
	}
	s := d.Summarize()
	fmt.Fprintf(os.Stderr, "wrote %s: %d records, %d positives (%.3f%%)\n",
		s.Name, s.Records, s.Positives, 100*s.TPR)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "supg-datagen: "+format+"\n", args...)
	os.Exit(1)
}
