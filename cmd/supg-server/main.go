// Command supg-server runs the SUPG HTTP service: upload datasets and
// execute SUPG queries over the network, synchronously or through the
// async job API.
//
// Usage:
//
//	supg-server -addr :8080 [-preload beta] [-workers 4] [-oracle-parallelism 8] \
//	            [-persist-dir /var/lib/supg] [-label-wal /var/lib/supg/labels.wal]
//
// With -persist-dir set, uploaded datasets and built score indexes
// are flushed to disk and recovered on the next boot (mmap'd, zero
// proxy re-scans, byte-identical results); the label WAL defaults to
// labels.wal inside that directory, so a bare -persist-dir makes the
// whole server state durable. The boot banner reports what was
// recovered, and -persist-madvise hints residency for the mapped
// files.
//
// API:
//
//	GET    /healthz               liveness (always 200 while the process serves)
//	GET    /readyz                readiness: 503 while any oracle circuit
//	                              breaker is open
//	GET    /v1/datasets
//	PUT    /v1/datasets/{name}    body: CSV (id,proxy_score,label) or
//	                              binary with Content-Type: application/octet-stream
//	PUT    /v1/datasets/{name}/append
//	                              append records to an uploaded dataset (same
//	                              body formats); cached score indexes extend
//	                              incrementally instead of rebuilding
//	POST   /v1/query              body: {"sql": "SELECT * FROM ..."} (synchronous);
//	                              add "free_reuse": true to serve labels already
//	                              in the cross-query label cache without charging
//	                              the oracle budget
//	POST   /v1/jobs               same body; returns 202 + job id (asynchronous)
//	GET    /v1/jobs               list job statuses
//	GET    /v1/jobs/{id}          job status and, when done, the result
//	DELETE /v1/jobs/{id}          cancel an active job / remove a finished one
//	GET    /v1/stats              service counters
//
// Example session:
//
//	supg-datagen -kind beta -n 100000 -out /tmp/beta.csv
//	curl -X PUT --data-binary @/tmp/beta.csv localhost:8080/v1/datasets/beta
//	curl -X POST localhost:8080/v1/jobs -d '{"sql":
//	  "SELECT * FROM beta WHERE beta_oracle(x) = true ORACLE LIMIT 1000
//	   USING beta_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%"}'
//	curl localhost:8080/v1/jobs/job-000001
//
// On SIGINT/SIGTERM the server stops accepting connections, then
// drains in-flight and queued jobs up to -shutdown-grace before
// cancelling whatever remains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"supg/internal/dataset"
	"supg/internal/randx"
	"supg/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Uint64("seed", 1, "query randomness seed")
		preload     = flag.String("preload", "", "preload a demo dataset: beta|imagenet|nightstreet")
		n           = flag.Int("n", 100_000, "preloaded dataset size (beta/nightstreet)")
		workers     = flag.Int("workers", 4, "async job worker-pool size")
		parallelism = flag.Int("oracle-parallelism", 1, "concurrent oracle calls per query (oracle UDFs must be goroutine-safe when > 1)")
		maxBody     = flag.Int64("max-body-bytes", 64<<20, "dataset upload size limit in bytes (negative disables)")
		retention   = flag.Duration("job-retention", 15*time.Minute, "how long finished jobs stay queryable")
		oracleLat   = flag.Duration("oracle-latency", 0, "simulated per-call oracle latency for every registered dataset (preloads and uploads)")
		segSize     = flag.Int("segment-size", 0, "records per score-index segment (0 = default 256Ki); identical results at any setting")
		buildPar    = flag.Int("index-build-parallelism", 0, "concurrent segment builds per index (0 = GOMAXPROCS)")
		queryPar    = flag.Int("query-parallelism", 0, "intra-query parallel segment reductions shared across concurrent queries (0 = GOMAXPROCS, 1 disables); byte-identical results at any setting")
		quantizeIx  = flag.Bool("quantize-index", false, "build score indexes with 16-bit quantized score codes: byte-identical results, ~4x less scan memory traffic; code vectors persist with -persist-dir")
		labelBytes  = flag.Int64("label-cache-bytes", 0, "cross-query oracle label cache budget in bytes (0 = default 64 MiB; negative disables label reuse)")
		labelShards = flag.Int("label-cache-shards", 0, "label cache shards per (table, oracle) pair (0 = default 16)")
		labelWAL    = flag.String("label-wal", "", "path of the label store write-ahead log; bought labels are journaled and replayed on restart, so the server re-buys zero labels (empty = not durable)")
		walSync     = flag.Int("label-wal-sync-every", 1, "fsync the label WAL every N records (1 = every record)")
		oracleTO    = flag.Duration("oracle-timeout", 0, "per-attempt oracle UDF timeout; timed-out attempts are retried as transient failures (0 = unbounded)")
		oracleRetry = flag.Int("oracle-retries", 0, "retries per oracle call after a transient failure (0 = fail on first error); retries never change query results")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive failed oracle calls that trip the circuit breaker open (0 = default 5)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "how long an open breaker fails fast before probing the backend again (0 = default 1s); also the Retry-After hint on 503s")
		grace       = flag.Duration("shutdown-grace", 30*time.Second, "drain window for in-flight jobs on shutdown")
		variants    = flag.Bool("preload-proxy-variants", false, "register <preload>_proxy_soft (sqrt) and <preload>_proxy_sharp (squared) proxy variants so FUSE queries are demoable out of the box")
		persistDir  = flag.String("persist-dir", "", "durable storage directory: datasets and built score indexes are flushed here and recovered on restart (mmap'd, zero proxy re-scans, byte-identical results); also the default home of the label WAL")
		persistAdv  = flag.String("persist-madvise", "", "residency hint for mmap'd persisted files: normal|random|sequential|willneed (empty = none)")
	)
	flag.Parse()

	// A persistent server wants a persistent label store too: default
	// the label WAL into the persist dir unless explicitly configured.
	if *persistDir != "" && *labelWAL == "" {
		*labelWAL = filepath.Join(*persistDir, "labels.wal")
	}

	srv, err := server.Open(*seed, server.Options{
		Workers:               *workers,
		OracleParallelism:     *parallelism,
		MaxBodyBytes:          *maxBody,
		JobRetention:          *retention,
		OracleLatency:         *oracleLat,
		SegmentSize:           *segSize,
		IndexBuildParallelism: *buildPar,
		QueryParallelism:      *queryPar,
		QuantizeIndex:         *quantizeIx,
		LabelCacheBytes:       *labelBytes,
		LabelCacheShards:      *labelShards,
		LabelWALPath:          *labelWAL,
		LabelWALSyncEvery:     *walSync,
		OracleTimeout:         *oracleTO,
		OracleRetries:         *oracleRetry,
		BreakerThreshold:      *brkThresh,
		BreakerCooldown:       *brkCooldown,
		PersistDir:            *persistDir,
		PersistMadvise:        *persistAdv,
	})
	if err != nil {
		log.Fatalf("supg-server: %v", err)
	}
	if *labelWAL != "" {
		st := srv.Engine().LabelStore().Stats()
		fmt.Printf("label WAL %s: replayed %d labels (%d records)\n", *labelWAL, st.WALReplayed, st.WALRecords)
	}
	if info, ok := srv.Engine().RecoveryInfo(); ok {
		fmt.Printf("persist dir %s: recovered %d tables, %d indexes (%d segments), %.1f MiB mapped in %s\n",
			*persistDir, info.Tables, info.Indexes, info.Segments,
			float64(info.MappedBytes)/(1<<20), info.Elapsed.Round(time.Millisecond))
		for _, note := range info.Degraded {
			log.Printf("supg-server: persist recovery degraded: %s", note)
		}
	}
	if *preload != "" {
		d := srv.Dataset(*preload)
		if d != nil {
			// The storage tier already recovered this dataset — keep it
			// (and its persisted indexes) instead of regenerating, which
			// would invalidate the recovered state.
			fmt.Printf("preload %s: recovered %d records from persist dir, skipping regeneration\n",
				*preload, d.Len())
		} else {
			r := randx.New(*seed)
			switch *preload {
			case "beta":
				d = dataset.Beta(r, *n, 0.01, 2)
			case "imagenet":
				d = dataset.ImageNetSim(r)
			case "nightstreet":
				d = dataset.NightStreetSimN(r, *n)
			default:
				log.Fatalf("supg-server: unknown preload %q", *preload)
			}
			srv.RegisterDataset(*preload, d)
			fmt.Printf("preloaded %s: %d records (%.3f%% positive)\n",
				*preload, d.Len(), 100*d.PositiveRate())
		}
		if *variants {
			// Deterministic monotone transforms of the preloaded proxy:
			// individually they are miscalibrated views of the same
			// signal, which is exactly the shape FUSE queries combine —
			// e.g. USING FUSE(mean, beta_proxy(x), beta_proxy_soft(x)).
			soft, sharp := *preload+"_proxy_soft", *preload+"_proxy_sharp"
			srv.RegisterProxy(soft, func(i int) float64 { return math.Sqrt(d.Score(i)) })
			srv.RegisterProxy(sharp, func(i int) float64 { s := d.Score(i); return s * s })
			fmt.Printf("registered proxy variants %s, %s\n", soft, sharp)
		}
	}

	httpServer := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Hardening against slow or stuck clients: bound the header read
		// (slowloris), the full response write (queries can run minutes —
		// the window is generous but finite), and idle keep-alives.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	fmt.Printf("supg-server listening on %s (%d job workers, oracle parallelism %d)\n",
		*addr, *workers, *parallelism)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("supg-server: shutting down, draining jobs...")

	// The listener shutdown and the job drain share the grace window but
	// run concurrently, so a slow synchronous query cannot starve the
	// job drain of its time.
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := httpServer.Shutdown(graceCtx); err != nil {
			log.Printf("supg-server: http shutdown: %v", err)
		}
	}()
	if err := srv.Shutdown(graceCtx); errors.Is(err, context.DeadlineExceeded) {
		log.Printf("supg-server: drain window expired; remaining jobs cancelled")
	} else if err != nil {
		log.Printf("supg-server: job drain: %v", err)
	}
	wg.Wait()
	fmt.Println("supg-server: bye")
}
