// Command supg-server runs the SUPG HTTP service: upload datasets and
// execute SUPG queries over the network.
//
// Usage:
//
//	supg-server -addr :8080 [-preload beta]
//
// API:
//
//	GET  /healthz
//	GET  /v1/datasets
//	PUT  /v1/datasets/{name}      body: CSV (id,proxy_score,label) or
//	                              binary with Content-Type: application/octet-stream
//	POST /v1/query                body: {"sql": "SELECT * FROM ..."}
//
// Example session:
//
//	supg-datagen -kind beta -n 100000 -out /tmp/beta.csv
//	curl -X PUT --data-binary @/tmp/beta.csv localhost:8080/v1/datasets/beta
//	curl -X POST localhost:8080/v1/query -d '{"sql":
//	  "SELECT * FROM beta WHERE beta_oracle(x) = true ORACLE LIMIT 1000
//	   USING beta_proxy(x) RECALL TARGET 90% WITH PROBABILITY 95%"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"supg/internal/dataset"
	"supg/internal/randx"
	"supg/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		seed    = flag.Uint64("seed", 1, "query randomness seed")
		preload = flag.String("preload", "", "preload a demo dataset: beta|imagenet|nightstreet")
		n       = flag.Int("n", 100_000, "preloaded dataset size (beta/nightstreet)")
	)
	flag.Parse()

	srv := server.New(*seed)
	if *preload != "" {
		r := randx.New(*seed)
		var d *dataset.Dataset
		switch *preload {
		case "beta":
			d = dataset.Beta(r, *n, 0.01, 2)
		case "imagenet":
			d = dataset.ImageNetSim(r)
		case "nightstreet":
			d = dataset.NightStreetSimN(r, *n)
		default:
			log.Fatalf("supg-server: unknown preload %q", *preload)
		}
		srv.RegisterDataset(*preload, d)
		fmt.Printf("preloaded %s: %d records (%.3f%% positive)\n",
			*preload, d.Len(), 100*d.PositiveRate())
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("supg-server listening on %s\n", *addr)
	log.Fatal(httpServer.ListenAndServe())
}
