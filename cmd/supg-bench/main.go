// Command supg-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	supg-bench -list
//	supg-bench -run fig5,fig6 -trials 100 -scale 1.0
//	supg-bench -run all -scale 0.05 -trials 20
//
// Scale 1.0 reproduces the paper's dataset sizes (up to 10^6 records);
// smaller scales shrink datasets and budgets proportionally for quick
// shape checks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"supg/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		trials  = flag.Int("trials", 100, "trials per configuration")
		scale   = flag.Float64("scale", 1.0, "dataset/budget scale factor (1.0 = paper scale)")
		seed    = flag.Uint64("seed", 0x5069, "random seed")
		par     = flag.Int("parallelism", 0, "max concurrent trials (0 = GOMAXPROCS)")
		outPath = flag.String("out", "", "also append reports to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{
		Seed:        *seed,
		Trials:      *trials,
		Scale:       *scale,
		Parallelism: *par,
	}

	var ids []string
	if *run == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	var out *os.File
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fatalf("opening %s: %v", *outPath, err)
		}
		defer f.Close()
		out = f
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := experiments.Find(id)
		if !ok {
			fatalf("unknown experiment %q (try -list)", id)
		}
		start := time.Now()
		rep, err := exp.Run(opts)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		text := rep.String()
		fmt.Println(text)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		if out != nil {
			fmt.Fprintln(out, text)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "supg-bench: "+format+"\n", args...)
	os.Exit(1)
}
