// Command supg runs a SUPG query (the paper's Figure 3 / 14 SQL
// dialect) against a CSV dataset of proxy scores and labels.
//
// Usage:
//
//	supg -data video.csv -query 'SELECT * FROM data
//	  WHERE data_oracle(frame) = true
//	  ORACLE LIMIT 1000
//	  USING data_proxy(frame)
//	  RECALL TARGET 90%
//	  WITH PROBABILITY 95%'
//
// The CSV must use the interchange layout id,proxy_score,label. The
// table is registered as "data" with UDFs data_oracle / data_proxy.
// Because the CSV carries ground-truth labels, the command also reports
// the achieved precision and recall of the returned set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"supg/internal/dataset"
	"supg/internal/engine"
	"supg/internal/metrics"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV dataset (id,proxy_score,label)")
		queryText = flag.String("query", "", "SUPG query text")
		queryFile = flag.String("query-file", "", "file containing the SUPG query")
		seed      = flag.Uint64("seed", 1, "random seed")
		showIDs   = flag.Int("show", 10, "number of returned record ids to print")
	)
	flag.Parse()

	if *dataPath == "" {
		fatalf("missing -data")
	}
	sql := *queryText
	if sql == "" && *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatalf("reading query file: %v", err)
		}
		sql = string(b)
	}
	if strings.TrimSpace(sql) == "" {
		fatalf("missing -query or -query-file")
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fatalf("opening dataset: %v", err)
	}
	var d *dataset.Dataset
	if strings.HasSuffix(*dataPath, ".bin") {
		d, err = dataset.ReadBinary(f, "data")
	} else {
		d, err = dataset.ReadCSV(f, "data")
	}
	f.Close()
	if err != nil {
		fatalf("parsing dataset: %v", err)
	}

	eng := engine.New(*seed)
	eng.RegisterDatasetDefaults("data", d)

	res, err := eng.Execute(sql)
	if err != nil {
		fatalf("executing query: %v", err)
	}

	eval := metrics.Evaluate(d, res.Indices)
	fmt.Printf("records:            %d\n", d.Len())
	fmt.Printf("returned:           %d\n", len(res.Indices))
	fmt.Printf("proxy threshold:    %g\n", res.Tau)
	fmt.Printf("oracle calls:       %d\n", res.OracleCalls)
	fmt.Printf("elapsed:            %v (proxy scan %v)\n", res.Elapsed, res.ProxyElapsed)
	fmt.Printf("achieved precision: %.2f%%\n", 100*eval.Precision)
	fmt.Printf("achieved recall:    %.2f%%\n", 100*eval.Recall)
	if *showIDs > 0 && len(res.Indices) > 0 {
		n := *showIDs
		if n > len(res.Indices) {
			n = len(res.Indices)
		}
		fmt.Printf("first %d ids:       %v\n", n, res.Indices[:n])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "supg: "+format+"\n", args...)
	os.Exit(1)
}
