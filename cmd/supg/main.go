// Command supg runs a SUPG query (the paper's Figure 3 / 14 SQL
// dialect) against a CSV dataset of proxy scores and labels.
//
// Usage:
//
//	supg -data video.csv -query 'SELECT * FROM data
//	  WHERE data_oracle(frame) = true
//	  ORACLE LIMIT 1000
//	  USING data_proxy(frame)
//	  RECALL TARGET 90%
//	  WITH PROBABILITY 95%'
//
// The CSV must use the interchange layout id,proxy_score,label. The
// table is registered as "data" with UDFs data_oracle / data_proxy.
// Because the CSV carries ground-truth labels, the command also reports
// the achieved precision and recall of the returned set.
//
// Multi-proxy queries: each -aux name=path flag registers an extra
// dataset under its own table name with <name>_oracle / <name>_proxy
// UDFs, so a FUSE clause can combine several proxy columns over the
// primary table (the aux datasets must have at least as many records):
//
//	supg -data video.csv -aux fast=fast.csv \
//	  -query 'SELECT * FROM data
//	  WHERE data_oracle(frame) = true
//	  ORACLE LIMIT 1000
//	  USING FUSE(logistic, data_proxy(frame), fast_proxy(frame)) CALIBRATE 200
//	  RECALL TARGET 90%
//	  WITH PROBABILITY 95%'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"supg/internal/dataset"
	"supg/internal/engine"
	"supg/internal/metrics"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV dataset (id,proxy_score,label)")
		queryText = flag.String("query", "", "SUPG query text")
		queryFile = flag.String("query-file", "", "file containing the SUPG query")
		seed      = flag.Uint64("seed", 1, "random seed")
		showIDs   = flag.Int("show", 10, "number of returned record ids to print")
	)
	var aux []struct{ name, path string }
	flag.Func("aux", "extra dataset as name=path.csv, registered with <name>_oracle/<name>_proxy UDFs for FUSE clauses (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path.csv, got %q", v)
		}
		aux = append(aux, struct{ name, path string }{name, path})
		return nil
	})
	flag.Parse()

	if *dataPath == "" {
		fatalf("missing -data")
	}
	sql := *queryText
	if sql == "" && *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatalf("reading query file: %v", err)
		}
		sql = string(b)
	}
	if strings.TrimSpace(sql) == "" {
		fatalf("missing -query or -query-file")
	}

	d, err := loadDataset(*dataPath, "data")
	if err != nil {
		fatalf("%v", err)
	}

	eng := engine.New(*seed)
	eng.RegisterDatasetDefaults("data", d)
	for _, a := range aux {
		ad, err := loadDataset(a.path, a.name)
		if err != nil {
			fatalf("aux dataset %s: %v", a.name, err)
		}
		if ad.Len() < d.Len() {
			fatalf("aux dataset %s has %d records, fewer than the primary's %d", a.name, ad.Len(), d.Len())
		}
		eng.RegisterDatasetDefaults(a.name, ad)
	}

	res, err := eng.Execute(sql)
	if err != nil {
		fatalf("executing query: %v", err)
	}

	eval := metrics.Evaluate(d, res.Indices)
	fmt.Printf("records:            %d\n", d.Len())
	fmt.Printf("returned:           %d\n", len(res.Indices))
	fmt.Printf("proxy threshold:    %g\n", res.Tau)
	fmt.Printf("oracle calls:       %d\n", res.OracleCalls)
	if res.Fusion != "" {
		fmt.Printf("fusion:             %s (%d calibration calls, %d from label cache)\n",
			res.Fusion, res.CalibrationCalls, res.CalibrationCacheHits)
	}
	fmt.Printf("elapsed:            %v (proxy scan %v)\n", res.Elapsed, res.ProxyElapsed)
	fmt.Printf("achieved precision: %.2f%%\n", 100*eval.Precision)
	fmt.Printf("achieved recall:    %.2f%%\n", 100*eval.Recall)
	if *showIDs > 0 && len(res.Indices) > 0 {
		n := *showIDs
		if n > len(res.Indices) {
			n = len(res.Indices)
		}
		fmt.Printf("first %d ids:       %v\n", n, res.Indices[:n])
	}
}

// loadDataset reads a CSV (or .bin binary) dataset from path.
func loadDataset(path, name string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening dataset: %w", err)
	}
	defer f.Close()
	var d *dataset.Dataset
	if strings.HasSuffix(path, ".bin") {
		d, err = dataset.ReadBinary(f, name)
	} else {
		d, err = dataset.ReadCSV(f, name)
	}
	if err != nil {
		return nil, fmt.Errorf("parsing dataset: %w", err)
	}
	return d, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "supg: "+format+"\n", args...)
	os.Exit(1)
}
