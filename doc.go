// Package supg is a Go implementation of SUPG — approximate selection
// queries with statistical guarantees using proxies (Kang, Gan, Bailis,
// Hashimoto, Zaharia; PVLDB 13(11), 2020).
//
// A SUPG query selects the records of a dataset matching an expensive
// oracle predicate (a human labeler or a large model) using only a
// limited budget of oracle calls, guided by cheap proxy scores. Unlike
// the empirical-cutoff heuristics of earlier systems, SUPG queries come
// with a probabilistic guarantee: the returned set meets a minimum
// recall or precision target with probability at least 1-delta.
//
// # Quick start
//
//	scores := ...                  // proxy confidence per record, in [0,1]
//	oracle := supg.OracleFunc(func(i int) (bool, error) {
//	    return expensiveCheck(i), nil // human label or big-model call
//	})
//	res, err := supg.Run(scores, oracle, supg.Query{
//	    Kind:        supg.RecallQuery,
//	    Target:      0.90,
//	    Probability: 0.95,
//	    OracleLimit: 1000,
//	})
//	// res.Indices meets 90% recall with >= 95% probability.
//
// The SQL-style interface of the paper's Figure 3 is available through
// Engine:
//
//	eng := supg.NewEngine(42)
//	eng.RegisterDatasetDefaults("video", ds)
//	res, err := eng.Execute(`
//	    SELECT * FROM video
//	    WHERE video_oracle(frame) = true
//	    ORACLE LIMIT 1000
//	    USING video_proxy(frame)
//	    RECALL TARGET 90%
//	    WITH PROBABILITY 95%`)
//
// # Algorithms
//
// Run defaults to the paper's SUPG configuration: importance sampling
// with square-root proxy weights, 10% defensive uniform mixing, and
// two-stage sampling for precision targets. The baselines evaluated in
// the paper (uniform sampling with and without confidence intervals)
// are available through WithMethod for comparison, and the
// confidence-interval construction, weight exponent, mixing ratio and
// candidate stride are all tunable through Options.
//
// # Performance architecture
//
// The proxy is cheap but the dataset is large, so everything derived
// from the score column is computed once and reused. The first query
// of a registered (table, proxy) pair evaluates the proxy over all n
// records and builds an immutable ScoreIndex (internal/index): the
// validated score vector, an ascending permutation of record ids by
// score, and a cache of defensive-mixture alias tables keyed by
// (weight exponent, mixing ratio). Every later query — including
// concurrent queries of the same table — runs against that shared
// index: threshold counts are binary searches, the selected suffix
// {x : A(x) >= tau} is extracted presorted, sampled positives are
// folded in with a single merge, and weighted draws come from the
// cached alias table. Steady-state query cost is therefore
// O(oracle budget + |result|) with a handful of allocations, instead
// of the O(n log n) time and O(n) allocations per query of a
// re-scanning implementation; see README.md for measured numbers.
//
// The one-shot supg.Run path computes the same artifacts lazily per
// call and returns bit-identical results for the same seed.
//
// # Segmented index and incremental appends
//
// The ScoreIndex is segmented: the column is split into fixed-size
// segments (default 256Ki records, tunable via engine/server options),
// each holding its own sorted (score, id) permutation, built in
// parallel across a bounded worker pool at registration time. The
// layout is invisible to queries — threshold counts sum per-segment
// binary searches, order statistics come from an exact bit-space
// binary search, suffix extraction concatenates per-segment ascending
// id runs, and the defensive-mixture weights are computed with the
// exact arithmetic and summation order of the monolithic code before
// feeding the same global alias table — so results are bit-for-bit
// identical at every segment size, which the test suite asserts
// segment size by segment size.
//
// Segmentation buys two operational properties. Registration of large
// tables parallelizes (segments sort independently; even serially,
// n·log(segment) beats n·log(n)). And tables can grow in place:
// engine.AppendTable / PUT /v1/datasets/{name}/append extend a table
// by indexing only the appended records as fresh segments — existing
// permutations are reused verbatim — instead of re-scanning and
// re-sorting everything, making a 256k-record append several times
// cheaper than re-registration while cached queries keep running
// against the old index until the extension is published.
//
// # Testing guarantees
//
// The guarantee machinery is protected by two complementary test
// layers. Equivalence tests pin the implementation: for fixed seeds,
// the segmented path must return byte-identical Indices and Tau to the
// monolithic and raw-slice paths across estimator families
// (SUPG/U-CI/U-NoCI/finite-sample), query kinds (recall, precision,
// joint), segment sizes (1, 7, 1024, n), and growth histories (one
// shot vs chains of appends). Statistical regression tests pin the
// semantics: a deterministic-seed Monte-Carlo harness (the Figure 5/6
// failure-rate machinery at reduced scale) runs repeated trials on the
// segmented path and asserts the empirical failure rate stays within
// delta plus a slack chosen so the check cannot flake. The dataset
// parsers guarding the upload/append endpoints carry native Go fuzz
// targets with committed seed corpora, and a -race stress test
// exercises concurrent append + query + re-registration.
//
// # Async jobs and concurrent oracle dispatch
//
// The oracle dominates query latency (it models a human labeler or a
// ground-truth DNN), so the HTTP service executes queries as
// asynchronous jobs and labels oracle samples concurrently. The
// samplers draw the full index set before labeling, which lets
// internal/oracle's Dispatcher fetch the labels with bounded
// parallelism and merge them back in draw order: results are
// bit-for-bit identical to sequential execution for the same seed at
// any parallelism. Queries take a context (engine.ExecutePlanContext)
// checked on every uncached oracle call, so cancelling a job stops
// budget consumption immediately.
//
// internal/jobs provides the job manager — a bounded worker pool with
// the lifecycle queued → running → done/failed/cancelled, per-job
// progress reporting of oracle calls consumed, and retention-based GC
// of finished jobs. internal/server exposes it as POST/GET/DELETE
// /v1/jobs endpoints next to the synchronous /v1/query convenience
// wrapper; cmd/supg-server drains in-flight jobs on SIGINT/SIGTERM.
// See README.md for the endpoint table and curl examples.
//
// # Cross-query label reuse
//
// Oracle labels are a pure function of the record index, so a label
// bought by one query is valid for every later query of the same
// (table, oracle UDF) pair. The engine keeps bought labels in a
// shared, bounded label store (internal/labelstore): sharded for
// concurrent queries and jobs, FIFO-evicted under a configurable byte
// budget (EngineOptions.LabelCacheBytes, -label-cache-bytes), and
// invalidated whenever a table or oracle UDF is re-registered — while
// AppendTable extends a table without touching existing ids, so the
// store survives appends intact.
//
// Reuse comes in two charging modes. The default charged mode serves a
// stored label without calling the oracle UDF but still charges a
// budget unit for it, which makes warm results byte-identical to a
// cold run: the samplers draw the same records, budgets exhaust at the
// same points, and Indices/Tau/OracleCalls match exactly — the
// guarantees of the paper apply verbatim because nothing observable to
// the algorithm changed, only who answered. The opt-in reuse-free mode
// (ORACLE LIMIT ... REUSE FREE in the grammar, ExecOptions.FreeReuse,
// or "free_reuse": true over HTTP) makes stored labels free, so the
// same budget buys a larger effective sample: a fully-warm repeat of a
// query reports zero oracle calls. Hit/miss/eviction/invalidation
// counters are exposed through Engine.LabelStore().Stats() and
// GET /v1/stats.
//
// # Multi-proxy queries (FUSE score sources)
//
// Every layer below the parser speaks one score-source concept
// (query.ScoreSource): one or more proxy UDFs plus a fusion strategy,
// with the classic single-proxy query as the degenerate one-member
// source. The USING clause accepts
//
//	USING FUSE(mean | max | logistic, p1(col), p2(col), ...) [CALIBRATE k]
//
// mean and max are label-free per-record combinations; logistic fits a
// logistic-regression stacker on an oracle-labeled calibration sample
// (k labels; default a fifth of the ORACLE LIMIT, clamped to
// [30, limit/2]) and scores every record with it. Fusion never touches
// the statistical guarantees — they are agnostic to proxy quality — it
// only improves result quality when the proxies carry complementary
// signal.
//
// The engine builds the fused column once per (table, score source),
// indexes it through the same segmented builder as any proxy column,
// and caches it under the full source identity (proxy set, strategy,
// and for logistic the calibration budget and oracle UDF). Calibration
// is charged to index construction rather than the query's ORACLE
// LIMIT and reported separately (QueryResult.CalibrationCalls,
// calibration_calls over HTTP); its labels flow through the
// cross-query label store, so rebuilding a fused index — after a
// member proxy re-registration, say — recalibrates without invoking
// the oracle UDF at all. Label-free fused indexes extend incrementally
// on AppendTable; calibrated ones are rebuilt (warm) because the
// stacker must be refitted against the grown table. Re-registering any
// member proxy invalidates a fused index, and re-registering or
// wrapping the calibration oracle invalidates every index fitted with
// its labels.
//
// The library path RunMulti keeps the one-shot semantics: fusion via
// the same multiproxy.Fuser provider, with calibration charged against
// the query's own budget (WithCalibrationBudget overrides the
// default). See README.md ("Multi-proxy queries") and
// examples/multiproxy.
//
// # Fault tolerance and durability
//
// Oracle backends flake, stall, and crash; the resilience layer
// absorbs all three without changing query results. Failures are
// classified (internal/oracle): transient errors retry under capped
// exponential backoff with a per-attempt timeout, permanent errors and
// context cancellation fail immediately, and consecutive final
// failures trip a per-UDF circuit breaker (closed -> open -> half-open
// probe). Backoff jitter is a pure function of (seed, record index,
// attempt), so retries are deterministic at any dispatch parallelism:
// a run with injected transient failures is byte-identical in
// Indices/Tau/OracleCalls to a fault-free run (pinned by the chaos
// battery against oracle.Chaos, a seeded fault-injection wrapper).
// When retries exhaust or the breaker is open, the error unwraps to
// oracle.ErrOracleUnavailable carrying the labels folded before the
// failure; supg-server maps it to 503 with a Retry-After hint and
// flips GET /readyz to 503 while the breaker is open.
//
// The label store optionally journals every bought label to a
// CRC-framed, fsync'd write-ahead log (-label-wal) and replays it on
// boot, truncating any torn tail — a restarted server re-buys zero
// labels. Invalidations append tombstones, and a compaction pass
// (automatic on boot when the log is mostly dead) rewrites live
// labels into a fresh log via atomic rename. See README.md ("Fault
// tolerance & durability") for the frame format and the recovery
// procedure.
//
// # Durable storage: zero-rescan recovery
//
// Labels are the only state worth money, but proxy scores and index
// permutations are the state worth time: at production scale, scoring
// millions of records takes hours, and before this tier a restart
// threw all of it away. internal/storage persists both — dataset
// columns and the per-segment immutable (score, id) permutations of
// every built index — as write-once files committed through a
// CRC-framed manifest log with the same torn-tail-truncation and
// compaction discipline as the label WAL. An engine opened with a
// persist directory (engine.Options.PersistDir, supg-server
// -persist-dir) flushes each index after build or append and, on
// boot, mmaps everything back: recovery re-sorts zero permutations
// and calls zero proxy UDFs — persisted segments are verified in
// O(n) (strict (score, id) ascent, bounds, bitwise agreement with the
// column), which pins the unique sort order and makes every recovered
// answer byte-identical to the pre-crash one. Corrupt or torn files
// are never served: the affected index degrades to a clean rebuild
// (durably tombstoned, reported in RecoveryInfo and /v1/stats), and a
// torn manifest tail is truncated exactly like the WAL's. See
// README.md ("Durable storage") for the file formats, the
// invalidation rules, and the recovery procedure.
//
// # Static analysis
//
// The invariants above are machine-enforced by supglint
// (cmd/supglint, internal/lint): custom analyzers verify that
// result-path packages stay a pure function of (data, seed)
// [determinism], that errors crossing the oracle boundary carry a
// Transient/Permanent class and wrap with %w [errtaxonomy], that
// storage and WAL writes flow through the fsync'd tmp→rename commit
// helpers [atomiccommit], and that benchmarks in the CI-gated
// batteries report correctly [benchhygiene]. Deliberate exceptions
// are annotated in place with //supg:<check>-ok <reason>; stale or
// malformed annotations fail the build exactly like fresh
// violations. `make lint` runs the suite, and TestRepoIsLintClean
// pins the whole-module sweep clean at every commit. See README.md
// ("Static analysis: supglint") and the internal/lint package
// documentation for the annotation grammar and how to add an
// analyzer.
package supg
