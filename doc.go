// Package supg is a Go implementation of SUPG — approximate selection
// queries with statistical guarantees using proxies (Kang, Gan, Bailis,
// Hashimoto, Zaharia; PVLDB 13(11), 2020).
//
// A SUPG query selects the records of a dataset matching an expensive
// oracle predicate (a human labeler or a large model) using only a
// limited budget of oracle calls, guided by cheap proxy scores. Unlike
// the empirical-cutoff heuristics of earlier systems, SUPG queries come
// with a probabilistic guarantee: the returned set meets a minimum
// recall or precision target with probability at least 1-delta.
//
// # Quick start
//
//	scores := ...                  // proxy confidence per record, in [0,1]
//	oracle := supg.OracleFunc(func(i int) (bool, error) {
//	    return expensiveCheck(i), nil // human label or big-model call
//	})
//	res, err := supg.Run(scores, oracle, supg.Query{
//	    Kind:        supg.RecallQuery,
//	    Target:      0.90,
//	    Probability: 0.95,
//	    OracleLimit: 1000,
//	})
//	// res.Indices meets 90% recall with >= 95% probability.
//
// The SQL-style interface of the paper's Figure 3 is available through
// Engine:
//
//	eng := supg.NewEngine(42)
//	eng.RegisterDatasetDefaults("video", ds)
//	res, err := eng.Execute(`
//	    SELECT * FROM video
//	    WHERE video_oracle(frame) = true
//	    ORACLE LIMIT 1000
//	    USING video_proxy(frame)
//	    RECALL TARGET 90%
//	    WITH PROBABILITY 95%`)
//
// # Algorithms
//
// Run defaults to the paper's SUPG configuration: importance sampling
// with square-root proxy weights, 10% defensive uniform mixing, and
// two-stage sampling for precision targets. The baselines evaluated in
// the paper (uniform sampling with and without confidence intervals)
// are available through WithMethod for comparison, and the
// confidence-interval construction, weight exponent, mixing ratio and
// candidate stride are all tunable through Options.
package supg
