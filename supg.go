package supg

import (
	"fmt"

	"supg/internal/core"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// Oracle evaluates the expensive ground-truth predicate for a record
// index. Implementations are typically human-labeling interfaces or
// large-model invocations.
type Oracle = oracle.Oracle

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc = oracle.Func

// QueryKind selects the guaranteed metric.
type QueryKind int

const (
	// RecallQuery guarantees Recall(result) >= Target.
	RecallQuery QueryKind = iota
	// PrecisionQuery guarantees Precision(result) >= Target.
	PrecisionQuery
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	if k == RecallQuery {
		return "recall"
	}
	return "precision"
}

// Query is a budgeted SUPG query: guarantee the Target metric with
// probability Probability using at most OracleLimit oracle calls.
type Query struct {
	Kind        QueryKind
	Target      float64 // minimum recall or precision, in (0, 1]
	Probability float64 // success probability 1-delta, in (0, 1)
	OracleLimit int     // oracle call budget
}

// JointQuery is an appendix-style query guaranteeing both targets
// simultaneously; the oracle may be called an unbounded number of
// times, with StageBudget allocated to the internal recall stage.
type JointQuery struct {
	RecallTarget    float64
	PrecisionTarget float64
	Probability     float64
	StageBudget     int
}

// Result is a SUPG query answer.
type Result struct {
	// Indices is the sorted set of selected record indices.
	Indices []int
	// Tau is the proxy threshold used; records with score >= Tau were
	// selected (plus oracle-verified positives from the sample).
	Tau float64
	// OracleCalls is the number of oracle invocations consumed.
	OracleCalls int
}

// Option customizes Run's algorithm configuration.
type Option func(*runConfig)

type runConfig struct {
	cfg   core.Config
	seed  uint64
	calib int
}

// WithSeed fixes the random seed; runs with equal seeds and inputs are
// deterministic. The default seed is 1.
func WithSeed(seed uint64) Option {
	return func(rc *runConfig) { rc.seed = seed }
}

// WithCalibrationBudget caps the oracle labels RunMulti's logistic
// fusion spends fitting its stacker (default: 20% of the query budget,
// at least 30 calls, at most half). Calibration shares the query's
// oracle budget, so raising it trades threshold-estimation sample size
// for stacker quality. Label-free fusions ignore it.
func WithCalibrationBudget(labels int) Option {
	return func(rc *runConfig) { rc.calib = labels }
}

// Method selects between the paper's algorithm families.
type Method int

const (
	// MethodSUPG is the paper's importance-sampling algorithm (default).
	MethodSUPG Method = iota
	// MethodUniform is uniform sampling with confidence intervals
	// (the U-CI baseline).
	MethodUniform
	// MethodNoGuarantee is the prior-work empirical cutoff (U-NoCI);
	// it provides no failure-probability guarantee.
	MethodNoGuarantee
)

// WithMethod selects the algorithm family.
func WithMethod(m Method) Option {
	return func(rc *runConfig) {
		switch m {
		case MethodSUPG:
			rc.cfg = core.DefaultSUPG()
		case MethodUniform:
			rc.cfg = core.DefaultUCI()
		case MethodNoGuarantee:
			rc.cfg = core.DefaultUNoCI()
		}
	}
}

// WithWeightExponent overrides the importance-weight exponent (paper
// optimum 0.5; 0 = uniform, 1 = proportional).
func WithWeightExponent(e float64) Option {
	return func(rc *runConfig) { rc.cfg.WeightExponent = e }
}

// WithDefensiveMixing overrides the uniform-mixing ratio (paper: 0.1).
func WithDefensiveMixing(mix float64) Option {
	return func(rc *runConfig) { rc.cfg.Mix = mix }
}

// WithCandidateStride overrides the precision-target candidate stride m
// (paper: 100).
func WithCandidateStride(m int) Option {
	return func(rc *runConfig) { rc.cfg.MinStep = m }
}

// WithTwoStage toggles two-stage sampling for precision targets
// (paper default: enabled).
func WithTwoStage(on bool) Option {
	return func(rc *runConfig) { rc.cfg.TwoStage = on }
}

// CIMethod selects the confidence-interval construction.
type CIMethod int

const (
	// CINormal is the paper's default normal approximation.
	CINormal CIMethod = iota
	// CIHoeffding is the distribution-free Hoeffding bound.
	CIHoeffding
	// CIBootstrap is the percentile bootstrap.
	CIBootstrap
	// CIClopperPearson is the exact binomial interval (uniform
	// sampling only).
	CIClopperPearson
)

// WithCI selects the confidence-interval construction.
func WithCI(m CIMethod) Option {
	return func(rc *runConfig) {
		switch m {
		case CINormal:
			rc.cfg.Bound = core.BoundNormal
		case CIHoeffding:
			rc.cfg.Bound = core.BoundHoeffding
		case CIBootstrap:
			rc.cfg.Bound = core.BoundBootstrap
		case CIClopperPearson:
			rc.cfg.Bound = core.BoundClopperPearson
		}
	}
}

func buildConfig(opts []Option) runConfig {
	rc := runConfig{cfg: core.DefaultSUPG(), seed: 1}
	for _, o := range opts {
		o(&rc)
	}
	return rc
}

// coreSpec lowers a public Query onto the internal spec. An unknown
// Kind yields a spec whose Gamma is zeroed so Validate rejects it.
func coreSpec(q Query) core.Spec {
	spec := core.Spec{
		Gamma:  q.Target,
		Delta:  1 - q.Probability,
		Budget: q.OracleLimit,
	}
	switch q.Kind {
	case RecallQuery:
		spec.Kind = core.RecallTarget
	case PrecisionQuery:
		spec.Kind = core.PrecisionTarget
	default:
		spec.Gamma = 0
	}
	return spec
}

// Run executes a SUPG query over the proxy-score column using the
// oracle, honoring q.OracleLimit, and returns a set meeting the target
// with probability at least q.Probability.
func Run(scores []float64, o Oracle, q Query, opts ...Option) (*Result, error) {
	if q.Kind != RecallQuery && q.Kind != PrecisionQuery {
		return nil, fmt.Errorf("supg: unknown query kind %d", int(q.Kind))
	}
	rc := buildConfig(opts)
	res, err := core.Select(randx.New(rc.seed), scores, o, coreSpec(q), rc.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Indices: res.Indices, Tau: res.Tau, OracleCalls: res.OracleCalls}, nil
}

// RunJoint executes a joint recall+precision query (unbounded oracle).
// The returned set contains only oracle-verified positives, so its
// precision is 1 and its recall meets the target with probability at
// least q.Probability.
func RunJoint(scores []float64, o Oracle, q JointQuery, opts ...Option) (*Result, error) {
	rc := buildConfig(opts)
	spec := core.JointSpec{
		GammaRecall:    q.RecallTarget,
		GammaPrecision: q.PrecisionTarget,
		Delta:          1 - q.Probability,
		StageBudget:    q.StageBudget,
	}
	res, err := core.SelectJoint(randx.New(rc.seed), scores, o, spec, rc.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Indices: res.Indices, Tau: res.Tau, OracleCalls: res.OracleCalls}, nil
}
