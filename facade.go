package supg

import (
	"io"

	"supg/internal/dataset"
	"supg/internal/engine"
	"supg/internal/labelstore"
	"supg/internal/metrics"
	"supg/internal/multiproxy"
	"supg/internal/oracle"
	"supg/internal/randx"
)

// This file re-exports the data and engine substrates so downstream
// users can work entirely through the supg package.

// Dataset is an immutable record collection with proxy scores and
// hidden ground-truth labels (used for simulation and evaluation).
type Dataset = dataset.Dataset

// NewDataset builds a dataset from parallel score/label columns.
func NewDataset(name string, scores []float64, labels []bool) (*Dataset, error) {
	return dataset.New(name, scores, labels)
}

// ReadDatasetCSV loads a dataset from the id,proxy_score,label CSV
// interchange format.
func ReadDatasetCSV(r io.Reader, name string) (*Dataset, error) {
	return dataset.ReadCSV(r, name)
}

// WriteDatasetCSV stores a dataset in the CSV interchange format.
func WriteDatasetCSV(w io.Writer, d *Dataset) error {
	return dataset.WriteCSV(w, d)
}

// GenerateBeta creates the paper's synthetic benchmark: proxy scores
// from Beta(alpha, beta) with labels drawn as Bernoulli(score), i.e. a
// perfectly calibrated proxy. seed makes generation deterministic.
func GenerateBeta(seed uint64, n int, alpha, beta float64) *Dataset {
	return dataset.Beta(randx.New(seed), n, alpha, beta)
}

// SimulatedOracle returns an oracle revealing d's ground-truth labels,
// standing in for a human labeler in simulations.
func SimulatedOracle(d *Dataset) Oracle { return oracle.NewSimulated(d) }

// Evaluation is the quality of a returned set against ground truth.
type Evaluation = metrics.Eval

// Evaluate computes precision/recall of result indices against d's
// ground-truth labels.
func Evaluate(d *Dataset, indices []int) Evaluation {
	return metrics.Evaluate(d, indices)
}

// Engine executes the paper's SQL dialect (Figure 3 / Figure 14)
// against registered tables and UDFs.
type Engine = engine.Engine

// QueryResult is the engine-level answer with execution statistics.
type QueryResult = engine.QueryResult

// NewEngine returns an empty engine seeded for deterministic queries.
func NewEngine(seed uint64) *Engine { return engine.New(seed) }

// EngineOptions tune engine construction: score-index segmentation and
// the cross-query oracle label store bounds.
type EngineOptions = engine.Options

// ExecOptions tune one engine query execution (oracle parallelism,
// progress reporting, label-reuse charging mode).
type ExecOptions = engine.ExecOptions

// NewEngineWithOptions is NewEngine with explicit tuning.
func NewEngineWithOptions(seed uint64, opts EngineOptions) *Engine {
	return engine.NewWithOptions(seed, opts)
}

// LabelStoreStats is a snapshot of the engine's cross-query oracle
// label store activity (hits, misses, evictions, invalidations); see
// Engine.LabelStore.
type LabelStoreStats = labelstore.Stats

// Fusion selects how multiple proxy columns are combined by RunMulti.
type Fusion = multiproxy.Fusion

// Fusion strategies for RunMulti.
const (
	// FuseMean averages the proxy columns (label-free).
	FuseMean = multiproxy.FuseMean
	// FuseMax takes the per-record maximum (label-free).
	FuseMax = multiproxy.FuseMax
	// FuseLogistic fits a logistic stacker on an oracle-labeled
	// calibration sample, charged against the query budget.
	FuseLogistic = multiproxy.FuseLogistic
)

// MultiResult is RunMulti's answer.
type MultiResult = multiproxy.Result

// Fuser is the fusion provider RunMulti and the SQL engine share: a
// pure transformer from K proxy columns to one fused column plus
// calibration metadata (see the multiproxy package).
type Fuser = multiproxy.Fuser

// RunMulti answers a SUPG query over several proxy-score columns — the
// multiple-proxy extension sketched in the paper's Section 8. Columns
// are fused into one score per record (optionally calibrated with
// oracle labels, within the budget) and the standard guarantees then
// apply to the fused query. It is a thin shim over the Fuser provider;
// the SQL engine composes the same provider into its cached per-table
// indexes (see the FUSE clause in the query grammar).
func RunMulti(columns [][]float64, o Oracle, q Query, fusion Fusion, opts ...Option) (*MultiResult, error) {
	rc := buildConfig(opts)
	spec := coreSpec(q)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	f := Fuser{Kind: fusion}
	if fusion == FuseLogistic {
		f.CalibrationBudget = rc.calib
		if f.CalibrationBudget <= 0 {
			f.CalibrationBudget = multiproxy.DefaultCalibration(spec.Budget)
		}
	}
	return multiproxy.SelectFused(randx.New(rc.seed), columns, o, spec, rc.cfg, f)
}
